package chaos_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"gridrep/internal/chaos"
	"gridrep/internal/client"
	"gridrep/internal/core"
	"gridrep/internal/failure"
	"gridrep/internal/service"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// Grid must satisfy the failure package's link-fault abstraction so the
// same injection plans drive both the in-process fabric and real TCP.
var _ failure.LinkController = (*chaos.Grid)(nil)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	return ln
}

func roundTrip(t *testing.T, conn net.Conn, r *bufio.Reader, line string) error {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return err
	}
	got, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	if got != line+"\n" {
		t.Fatalf("echo mismatch: sent %q, got %q", line, got)
	}
	return nil
}

func TestProxyForwardAndSever(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p, err := chaos.NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	r := bufio.NewReader(conn)
	if err := roundTrip(t, conn, r, "hello"); err != nil {
		t.Fatalf("round trip: %v", err)
	}

	p.Sever()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("read after sever should fail")
	}
	conn.Close()

	// The proxy still accepts: a reconnect goes straight through.
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("redial proxy: %v", err)
	}
	defer conn2.Close()
	if err := roundTrip(t, conn2, bufio.NewReader(conn2), "again"); err != nil {
		t.Fatalf("round trip after sever: %v", err)
	}

	st := p.Stats()
	if st.Accepted < 2 || st.Severs != 1 || st.Bytes == 0 {
		t.Errorf("stats = %+v, want >=2 accepts, 1 sever, >0 bytes", st)
	}
}

func TestProxyBlackholeAndRestore(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p, err := chaos.NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	if err := roundTrip(t, conn, r, "before"); err != nil {
		t.Fatalf("round trip: %v", err)
	}

	p.SetBlackhole(true)
	// The write succeeds locally — that is the whole point of a
	// blackhole — but nothing comes back.
	if _, err := fmt.Fprintf(conn, "lost\n"); err != nil {
		t.Fatalf("write into blackhole should succeed locally: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("blackholed link must not echo")
	}
	conn.SetReadDeadline(time.Time{})

	p.Restore()
	if err := roundTrip(t, conn, r, "after"); err != nil {
		t.Fatalf("round trip after restore: %v", err)
	}
}

func TestProxyDownAndRebind(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p, err := chaos.NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	addr := p.Addr()

	if err := p.SetDown(true); err != nil {
		t.Fatalf("down: %v", err)
	}
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		c.Close()
		t.Fatal("dial to a downed link should be refused")
	}
	if err := p.SetDown(false); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial after rebind: %v", err)
	}
	defer conn.Close()
	if err := roundTrip(t, conn, bufio.NewReader(conn), "back"); err != nil {
		t.Fatalf("round trip after rebind: %v", err)
	}
}

func TestProxyDelay(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p, err := chaos.NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.SetDelay(30 * time.Millisecond)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer conn.Close()
	start := time.Now()
	if err := roundTrip(t, conn, bufio.NewReader(conn), "slow"); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	// 30ms each way; allow generous scheduling slack below the sum.
	if rtt := time.Since(start); rtt < 40*time.Millisecond {
		t.Errorf("delayed RTT = %v, want >= 40ms", rtt)
	}
}

// TestClusterSurvivesLinkChaos is the acceptance scenario from the
// issue: a 3-replica TCP cluster whose inter-replica links all run
// through chaos proxies completes a 500-op client workload while a
// background injector repeatedly severs random links and, mid-run, the
// current leader is blackholed (sockets up, bytes swallowed). Every
// acknowledged write must be readable afterwards, and the transport
// counters must show the self-healing machinery actually fired.
func TestClusterSurvivesLinkChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos cluster test skipped in -short mode")
	}
	peers := []wire.NodeID{0, 1, 2}
	topts := transport.Options{
		// Small queue: a partitioned peer's backlog must overflow
		// (drop-oldest) rather than grow without bound.
		QueueLen:     32,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		WriteTimeout: 2 * time.Second,
		PingEvery:    20 * time.Millisecond,
		PingTimeout:  100 * time.Millisecond,
	}

	// Each replica binds its real listener first...
	trs := make(map[wire.NodeID]*transport.TCP, len(peers))
	realBook := make(map[wire.NodeID]string, len(peers))
	for _, id := range peers {
		tr, err := transport.ListenTCPOpts(id, map[wire.NodeID]string{id: "127.0.0.1:0"}, topts)
		if err != nil {
			t.Fatalf("listen %d: %v", id, err)
		}
		trs[id] = tr
		realBook[id] = tr.Addr()
	}
	// ...then learns its peers through dedicated link proxies.
	grid := chaos.NewGrid(realBook)
	defer grid.Close()
	for _, id := range peers {
		book, err := grid.BookFor(id)
		if err != nil {
			t.Fatalf("book for %d: %v", id, err)
		}
		for pid, addr := range book {
			if pid != id {
				trs[id].SetAddr(pid, addr)
			}
		}
	}

	reps := make([]*core.Replica, 0, len(peers))
	for _, id := range peers {
		r, err := core.New(core.Config{
			ID:        id,
			Peers:     peers,
			Service:   service.NewKV(),
			Transport: trs[id],
			// Ping timeout (100ms) beats the election timeout, so the
			// blackholed leader is deposed by the transport's PeerDown
			// signal, not by Ω's slow silence detector.
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   300 * time.Millisecond,
			RetryTimeout:      40 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", id, err)
		}
		r.Start()
		reps = append(reps, r)
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()

	leaderOf := func() (wire.NodeID, bool) {
		for _, r := range reps {
			var lead bool
			if r.Inspect(func(rr *core.Replica) { lead = rr.IsActiveLeader() }) && lead {
				return r.ID(), true
			}
		}
		return 0, false
	}
	waitLeader := func() wire.NodeID {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if id, ok := leaderOf(); ok {
				return id
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("no leader elected")
		return 0
	}
	waitLeader()

	// The client dials the replicas' real addresses: chaos is injected
	// only between replicas, so an isolated leader can still hear the
	// client — it just cannot assemble a quorum to acknowledge anything.
	ctr := transport.DialTCPOpts(wire.ClientIDBase+1, realBook, topts)
	cli := client.New(client.Config{
		Transport:  ctr,
		Replicas:   peers,
		RetryEvery: 50 * time.Millisecond,
		Deadline:   20 * time.Second,
	})
	defer cli.Close()

	inj := failure.NewLinks(grid, 1)
	inj.Start(failure.LinkPlan{
		Every:   20 * time.Millisecond,
		Weights: map[failure.LinkAction]int{failure.LinkSever: 1},
	})

	const ops = 500
	acked := make(map[string][]byte, ops)
	for i := 0; i < ops; i++ {
		if i == ops/3 {
			// Blackhole the current leader's links: its sockets stay
			// up and its writes keep succeeding, but no bytes move.
			// Only the transport heartbeat can expose this.
			if lead, ok := leaderOf(); ok {
				grid.Isolate(lead, true)
				time.AfterFunc(600*time.Millisecond, func() { grid.Isolate(lead, false) })
			}
		}
		if i == 2*ops/3 {
			// Partition the current leader outright: dials are refused,
			// so peer supervisors back off while their bounded queues
			// overflow — the drop-counting path under real sockets.
			if lead, ok := leaderOf(); ok {
				grid.Partition(lead, true)
				time.AfterFunc(600*time.Millisecond, func() { grid.Partition(lead, false) })
			}
		}
		key := fmt.Sprintf("k%03d", i)
		val := []byte(fmt.Sprintf("v%03d", i))
		if _, err := cli.Write(service.KVPut(key, val)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		acked[key] = val
	}
	rep := inj.Stop()
	for _, link := range grid.Links() {
		grid.Restore(link[0], link[1])
		grid.SetDown(link[0], link[1], false)
	}
	t.Logf("chaos: %d severs, %d blackholes; grid %+v", rep.Severs, rep.Blackholes, grid.Stats())

	// Zero lost acknowledged writes: every acked key must read back.
	for key, want := range acked {
		res, err := cli.Read(service.KVGet(key))
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		got, found := service.KVReply(res)
		if !found || !bytes.Equal(got, want) {
			t.Fatalf("key %s: found=%v got=%q want=%q — acknowledged write lost", key, found, got, want)
		}
	}

	var sum transport.Stats
	for _, id := range peers {
		s := trs[id].Stats()
		sum.Dials += s.Dials
		sum.Reconnects += s.Reconnects
		sum.DropsQueueFull += s.DropsQueueFull
		sum.DropsNoRoute += s.DropsNoRoute
		sum.DropsWriteFail += s.DropsWriteFail
		sum.DropsRecvOverflow += s.DropsRecvOverflow
		t.Logf("replica %d transport: %+v", id, s)
	}
	if sum.Reconnects == 0 {
		t.Error("no reconnects recorded despite repeated link severing")
	}
	if rep.Severs > 0 && sum.Drops() == 0 {
		t.Error("no drops recorded under chaos; expected at least one counted cause")
	}
}
