// Package chaos fault-injects real TCP links. A Proxy is a socket-level
// man-in-the-middle for one directed link: connections accepted on its
// listen address are forwarded to a target, and at runtime the link can
// be severed (all connections cut), blackholed (bytes silently swallowed
// while connections stay up — the failure mode transport write calls
// never notice), delayed, or throttled. A Grid builds one Proxy per
// directed replica pair so tests can torture individual links of a
// multi-process deployment exactly the way netem tortures the in-process
// fabric, reproducing the PlanetLab-class churn the paper's prototype
// lived on.
package chaos

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a runtime-controllable TCP forwarder for one directed link.
type Proxy struct {
	target string

	mu         sync.Mutex
	ln         net.Listener
	listenAddr string                // pinned after the first bind so SetDown can rebind
	conns      map[net.Conn]struct{} // both halves of every live pair
	blackhole  bool
	delay      time.Duration
	throttle   int64 // bytes/second; 0 = unlimited
	severs     uint64
	accepted   uint64
	down       bool
	closed     bool

	bytes atomic.Uint64
	wg    sync.WaitGroup
}

// ProxyStats is a point-in-time snapshot of one link's counters.
type ProxyStats struct {
	Accepted uint64 // connections accepted
	Severs   uint64 // Sever calls that cut at least one connection
	Bytes    uint64 // payload bytes read from either side
	Active   int    // currently live connection halves
}

// NewProxy listens on listenAddr (e.g. "127.0.0.1:0") and forwards each
// accepted connection to target.
func NewProxy(listenAddr, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target:     target,
		ln:         ln,
		listenAddr: ln.Addr().String(),
		conns:      make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return p, nil
}

// Addr returns the proxy's listen address; dial this instead of the
// target to route a link through the proxy.
func (p *Proxy) Addr() string { return p.listenAddr }

// Target returns the address the proxy forwards to.
func (p *Proxy) Target() string { return p.target }

// Sever cuts every live connection through the proxy. New connections
// are still accepted, so a self-healing transport reconnects through it.
func (p *Proxy) Sever() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	if len(conns) > 0 {
		p.severs++
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// SetDown takes the link fully offline (on=true): the listener closes,
// live connections are cut, and redials get connection-refused — the
// partition failure mode, where a supervisor's backoff loop and bounded
// queue carry the load. SetDown(false) rebinds the same address so the
// link heals in place.
func (p *Proxy) SetDown(on bool) error {
	p.mu.Lock()
	if p.closed || p.down == on {
		p.mu.Unlock()
		return nil
	}
	p.down = on
	if on {
		ln := p.ln
		p.ln = nil
		p.mu.Unlock()
		ln.Close()
		p.Sever()
		return nil
	}
	ln, err := net.Listen("tcp", p.listenAddr)
	if err != nil {
		p.down = true
		p.mu.Unlock()
		return err
	}
	p.ln = ln
	p.wg.Add(1)
	p.mu.Unlock()
	go p.acceptLoop(ln)
	return nil
}

// SetBlackhole makes the link swallow every byte (in both directions)
// while on. Connections stay established and local writes keep
// succeeding — only an end-to-end heartbeat can detect this failure.
func (p *Proxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	p.mu.Unlock()
}

// SetDelay adds d of extra one-way latency to every forwarded chunk.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// SetThrottle caps the link's forwarding rate in bytes per second
// (0 = unlimited).
func (p *Proxy) SetThrottle(bytesPerSec int64) {
	p.mu.Lock()
	p.throttle = bytesPerSec
	p.mu.Unlock()
}

// Restore clears blackhole, delay, and throttle (severed connections
// stay dead; the transport is expected to redial).
func (p *Proxy) Restore() {
	p.mu.Lock()
	p.blackhole = false
	p.delay = 0
	p.throttle = 0
	p.mu.Unlock()
}

// Stats returns a snapshot of the link counters.
func (p *Proxy) Stats() ProxyStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ProxyStats{
		Accepted: p.accepted,
		Severs:   p.severs,
		Bytes:    p.bytes.Load(),
		Active:   len(p.conns),
	}
}

// Close shuts the proxy down, severing all connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	p.ln = nil
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	p.Sever()
	p.wg.Wait()
	return nil
}

func (p *Proxy) config() (blackhole bool, delay time.Duration, throttle int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blackhole, p.delay, p.throttle
}

func (p *Proxy) register(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) unregister(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		cli, err := ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.down {
			p.mu.Unlock()
			cli.Close()
			return
		}
		p.accepted++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.bridge(cli)
	}
}

// bridge dials the target and pumps both directions until either side
// dies or the link is severed.
func (p *Proxy) bridge(cli net.Conn) {
	defer p.wg.Done()
	srv, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		cli.Close()
		return
	}
	if !p.register(cli) || !p.register(srv) {
		cli.Close()
		srv.Close()
		p.unregister(cli)
		return
	}
	var pumps sync.WaitGroup
	pumps.Add(2)
	p.wg.Add(2)
	go func() { defer pumps.Done(); defer p.wg.Done(); p.pump(cli, srv) }()
	go func() { defer pumps.Done(); defer p.wg.Done(); p.pump(srv, cli) }()
	pumps.Wait()
	p.unregister(cli)
	p.unregister(srv)
}

// pump forwards src→dst chunk by chunk, applying the link's current
// blackhole/delay/throttle configuration per chunk. In blackhole mode it
// keeps reading (so the sender's TCP window stays open and its writes
// keep "succeeding") but forwards nothing.
func (p *Proxy) pump(src, dst net.Conn) {
	defer src.Close()
	defer dst.Close()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.bytes.Add(uint64(n))
			blackhole, delay, throttle := p.config()
			if !blackhole {
				if delay > 0 {
					time.Sleep(delay)
				}
				if throttle > 0 {
					time.Sleep(time.Duration(int64(n) * int64(time.Second) / throttle))
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}
