package chaos_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"gridrep/internal/chaos"
	"gridrep/internal/client"
	"gridrep/internal/core"
	"gridrep/internal/failure"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// TestDurableClusterSurvivesCrashUnderChaos is the crash-during-load
// scenario: a 3-replica TCP cluster with WAL-backed stores (Sync on,
// group commit batched) takes a client workload while a background
// injector severs random links, and mid-burst first the leader and later
// a backup are killed outright — staged in-RAM records discarded, state
// replayed from whatever fsync actually put on disk — and rejoin on the
// same address. Zero acknowledged writes may be lost.
func TestDurableClusterSurvivesCrashUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("durable chaos test skipped in -short mode")
	}
	dataDir := t.TempDir()
	peers := []wire.NodeID{0, 1, 2}
	topts := transport.Options{
		QueueLen:     32,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		WriteTimeout: 2 * time.Second,
		PingEvery:    20 * time.Millisecond,
		PingTimeout:  100 * time.Millisecond,
	}
	walPath := func(id wire.NodeID) string {
		return filepath.Join(dataDir, fmt.Sprintf("replica-%d.wal", id))
	}

	// Real listeners first, then the chaos proxies between them.
	trs := make(map[wire.NodeID]*transport.TCP, len(peers))
	realBook := make(map[wire.NodeID]string, len(peers))
	for _, id := range peers {
		tr, err := transport.ListenTCPOpts(id, map[wire.NodeID]string{id: "127.0.0.1:0"}, topts)
		if err != nil {
			t.Fatalf("listen %d: %v", id, err)
		}
		trs[id] = tr
		realBook[id] = tr.Addr()
	}
	grid := chaos.NewGrid(realBook)
	defer grid.Close()

	reps := make(map[wire.NodeID]*core.Replica, len(peers))
	start := func(id wire.NodeID, tr *transport.TCP, st storage.Store) {
		t.Helper()
		book, err := grid.BookFor(id)
		if err != nil {
			t.Fatalf("book for %d: %v", id, err)
		}
		for pid, addr := range book {
			if pid != id {
				tr.SetAddr(pid, addr)
			}
		}
		r, err := core.New(core.Config{
			ID:                id,
			Peers:             peers,
			Service:           service.NewKV(),
			Store:             st,
			Transport:         tr,
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   300 * time.Millisecond,
			RetryTimeout:      40 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", id, err)
		}
		r.Start()
		reps[id] = r
	}
	for _, id := range peers {
		st, err := storage.OpenFile(walPath(id))
		if err != nil {
			t.Fatal(err)
		}
		start(id, trs[id], st)
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()

	leaderOf := func() (wire.NodeID, bool) {
		for _, r := range reps {
			var lead bool
			if r.Inspect(func(rr *core.Replica) { lead = rr.IsActiveLeader() }) && lead {
				return r.ID(), true
			}
		}
		return 0, false
	}
	waitLeader := func() wire.NodeID {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if id, ok := leaderOf(); ok {
				return id
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("no leader elected")
		return 0
	}
	waitLeader()

	// crashAndRestart kills a replica the honest way: Stop discards its
	// staged (never-flushed) in-RAM records and closes its listener; the
	// restart replays only what fsync put on disk and rebinds the same
	// port so the grid proxies and peers find it again.
	crashAndRestart := func(id wire.NodeID, mustHaveState bool) {
		t.Helper()
		reps[id].Stop()
		fresh, err := storage.OpenFile(walPath(id))
		if err != nil {
			t.Fatalf("reopen WAL %d: %v", id, err)
		}
		st, err := fresh.Load()
		if err != nil {
			t.Fatalf("load WAL %d: %v", id, err)
		}
		t.Logf("replica %d restart: chosen=%d accepted=%d", id, st.Chosen, st.Accepted.Len())
		if mustHaveState && st.Accepted.Len() == 0 {
			t.Fatalf("replica %d WAL empty after %d acked writes: durability pipeline never flushed", id, st.Chosen)
		}
		var tr *transport.TCP
		deadline := time.Now().Add(5 * time.Second)
		for {
			tr, err = transport.ListenTCPOpts(id, map[wire.NodeID]string{id: realBook[id]}, topts)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rebind %d on %s: %v", id, realBook[id], err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		trs[id] = tr
		start(id, tr, fresh)
	}

	// The client dials the replicas' real addresses; chaos and crashes
	// live between and inside the replicas.
	ctr := transport.DialTCPOpts(wire.ClientIDBase+1, realBook, topts)
	cli := client.New(client.Config{
		Transport:  ctr,
		Replicas:   peers,
		RetryEvery: 50 * time.Millisecond,
		Deadline:   20 * time.Second,
	})
	defer cli.Close()

	inj := failure.NewLinks(grid, 1)
	inj.Start(failure.LinkPlan{
		Every:   25 * time.Millisecond,
		Weights: map[failure.LinkAction]int{failure.LinkSever: 1},
	})

	const ops = 300
	acked := make(map[string][]byte, ops)
	for i := 0; i < ops; i++ {
		if i == ops/3 {
			// Kill the leader mid-burst. After 100 acked writes its WAL
			// must hold flushed state — every ack waited on a quorum
			// fsync that includes the leader's own.
			if lead, ok := leaderOf(); ok {
				crashAndRestart(lead, true)
			}
		}
		if i == 2*ops/3 {
			// Kill a backup mid-burst. It may have missed some quorums,
			// so only log its recovered state.
			lead, _ := leaderOf()
			for _, id := range peers {
				if id != lead {
					crashAndRestart(id, false)
					break
				}
			}
		}
		key := fmt.Sprintf("k%03d", i)
		val := []byte(fmt.Sprintf("v%03d", i))
		if _, err := cli.Write(service.KVPut(key, val)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		acked[key] = val
	}
	rep := inj.Stop()
	for _, link := range grid.Links() {
		grid.Restore(link[0], link[1])
		grid.SetDown(link[0], link[1], false)
	}
	t.Logf("chaos: %d severs; grid %+v", rep.Severs, grid.Stats())

	// Zero lost acknowledged writes across both crashes.
	for key, want := range acked {
		res, err := cli.Read(service.KVGet(key))
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		got, found := service.KVReply(res)
		if !found || !bytes.Equal(got, want) {
			t.Fatalf("key %s: found=%v got=%q want=%q — acknowledged write lost", key, found, got, want)
		}
	}
}
