package chaos_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gridrep/internal/chaos"
	"gridrep/internal/client"
	"gridrep/internal/core"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// TestPipelinedLeaderCrashMidFlight kills the leader of a WAL-backed TCP
// cluster while its depth-4 speculative pipeline demonstrably holds
// multiple waves in flight. The crash is honest — staged in-RAM records
// are discarded, the WAL replays only what fsync put on disk — so the
// recovering cluster sees exactly the scenario the pipelining design
// must survive: a committed prefix plus an uncommitted speculative
// suffix, possibly with gaps. Every acknowledged write must survive, the
// suffix past any gap must be discarded rather than grafted onto the
// wrong state, and all replicas must converge.
func TestPipelinedLeaderCrashMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline chaos test skipped in -short mode")
	}
	dataDir := t.TempDir()
	peers := []wire.NodeID{0, 1, 2}
	topts := transport.Options{
		QueueLen:     32,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		WriteTimeout: 2 * time.Second,
		PingEvery:    20 * time.Millisecond,
		PingTimeout:  100 * time.Millisecond,
	}
	walPath := func(id wire.NodeID) string {
		return filepath.Join(dataDir, fmt.Sprintf("replica-%d.wal", id))
	}

	trs := make(map[wire.NodeID]*transport.TCP, len(peers))
	realBook := make(map[wire.NodeID]string, len(peers))
	for _, id := range peers {
		tr, err := transport.ListenTCPOpts(id, map[wire.NodeID]string{id: "127.0.0.1:0"}, topts)
		if err != nil {
			t.Fatalf("listen %d: %v", id, err)
		}
		trs[id] = tr
		realBook[id] = tr.Addr()
	}
	grid := chaos.NewGrid(realBook)
	defer grid.Close()

	var mu sync.Mutex
	reps := make(map[wire.NodeID]*core.Replica, len(peers))
	start := func(id wire.NodeID, tr *transport.TCP, st storage.Store) {
		t.Helper()
		book, err := grid.BookFor(id)
		if err != nil {
			t.Fatalf("book for %d: %v", id, err)
		}
		for pid, addr := range book {
			if pid != id {
				tr.SetAddr(pid, addr)
			}
		}
		r, err := core.New(core.Config{
			ID:                id,
			Peers:             peers,
			Service:           service.NewKV(),
			Store:             st,
			Transport:         tr,
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   300 * time.Millisecond,
			RetryTimeout:      40 * time.Millisecond,
			PipelineDepth:     4,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", id, err)
		}
		r.Start()
		mu.Lock()
		reps[id] = r
		mu.Unlock()
	}
	for _, id := range peers {
		st, err := storage.OpenFile(walPath(id))
		if err != nil {
			t.Fatal(err)
		}
		start(id, trs[id], st)
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range reps {
			r.Stop()
		}
	}()

	replica := func(id wire.NodeID) *core.Replica {
		mu.Lock()
		defer mu.Unlock()
		return reps[id]
	}
	leaderOf := func() (wire.NodeID, bool) {
		for _, id := range peers {
			r := replica(id)
			var lead bool
			if r.Inspect(func(rr *core.Replica) { lead = rr.IsActiveLeader() }) && lead {
				return id, true
			}
		}
		return 0, false
	}
	waitLeader := func() wire.NodeID {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if id, ok := leaderOf(); ok {
				return id
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("no leader elected")
		return 0
	}
	waitLeader()

	// Concurrent writers: enough parallel load that the leader's pipeline
	// holds several waves at once (each wave waits on a quorum fsync, so
	// waves are milliseconds long even on loopback TCP).
	const writers, each = 8, 40
	acked := make(map[string][]byte)
	var ackMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		ctr := transport.DialTCPOpts(wire.ClientIDBase+1+wire.NodeID(w), realBook, topts)
		cli := client.New(client.Config{
			Transport:  ctr,
			Replicas:   peers,
			RetryEvery: 50 * time.Millisecond,
			Deadline:   20 * time.Second,
		})
		wg.Add(1)
		go func(w int, cli *client.Client) {
			defer wg.Done()
			defer cli.Close()
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("w%d-k%03d", w, i)
				val := []byte(fmt.Sprintf("v%d-%03d", w, i))
				if _, err := cli.Write(service.KVPut(key, val)); err != nil {
					t.Errorf("writer %d op %d: %v", w, i, err)
					return
				}
				ackMu.Lock()
				acked[key] = val
				ackMu.Unlock()
			}
		}(w, cli)
	}

	// Wait until the leader demonstrably has 2+ waves in flight (Stats is
	// safe from any goroutine), then kill it mid-pipeline.
	var victim wire.NodeID
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never held 2+ waves in flight")
		}
		lead, ok := leaderOf()
		if ok && replica(lead).Stats().WavesInFlight >= 2 {
			victim = lead
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := replica(victim).Stats()
	t.Logf("killing leader %d with %d waves in flight (max %d, started %d, committed %d)",
		victim, st.WavesInFlight, st.MaxWavesInFlight, st.WavesStarted, st.WavesCommitted)

	// Honest crash: Stop discards staged in-RAM records; the reopened WAL
	// replays only what fsync put on disk.
	replica(victim).Stop()
	fresh, err := storage.OpenFile(walPath(victim))
	if err != nil {
		t.Fatalf("reopen WAL %d: %v", victim, err)
	}
	loaded, err := fresh.Load()
	if err != nil {
		t.Fatalf("load WAL %d: %v", victim, err)
	}
	t.Logf("replica %d restart: chosen=%d accepted=%d", victim, loaded.Chosen, loaded.Accepted.Len())
	var tr *transport.TCP
	rebind := time.Now().Add(5 * time.Second)
	for {
		tr, err = transport.ListenTCPOpts(victim, map[wire.NodeID]string{victim: realBook[victim]}, topts)
		if err == nil {
			break
		}
		if time.Now().After(rebind) {
			t.Fatalf("rebind %d on %s: %v", victim, realBook[victim], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	trs[victim] = tr
	start(victim, tr, fresh)

	wg.Wait()
	newLead := waitLeader()
	t.Logf("recovered: leader %d, recovery_discarded=%d",
		newLead, replica(newLead).Stats().RecoveryDiscarded)

	// Zero lost acknowledged writes: the committed prefix survived the
	// crash and the discarded speculative suffix took no ack with it.
	vtr := transport.DialTCPOpts(wire.ClientIDBase+100, realBook, topts)
	vcli := client.New(client.Config{
		Transport:  vtr,
		Replicas:   peers,
		RetryEvery: 50 * time.Millisecond,
		Deadline:   20 * time.Second,
	})
	defer vcli.Close()
	ackMu.Lock()
	defer ackMu.Unlock()
	t.Logf("verifying %d acked writes", len(acked))
	for key, want := range acked {
		res, err := vcli.Read(service.KVGet(key))
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		got, found := service.KVReply(res)
		if !found || !bytes.Equal(got, want) {
			t.Fatalf("key %s: found=%v got=%q want=%q — acknowledged write lost", key, found, got, want)
		}
	}

	// And the replicas converge to one log: chosen == applied everywhere.
	conv := time.Now().Add(10 * time.Second)
	for {
		var chosen, applied []uint64
		for _, id := range peers {
			replica(id).Inspect(func(r *core.Replica) {
				chosen = append(chosen, r.Chosen())
				applied = append(applied, r.Applied())
			})
		}
		same := len(chosen) == len(peers)
		for i := range chosen {
			if chosen[i] != chosen[0] || applied[i] != chosen[i] {
				same = false
			}
		}
		if same {
			break
		}
		if time.Now().After(conv) {
			t.Fatalf("replicas did not converge: chosen=%v applied=%v", chosen, applied)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
