package chaos

import (
	"fmt"
	"sync"
	"time"

	"gridrep/internal/netem"
	"gridrep/internal/wire"
)

// Grid manages one Proxy per directed link of a TCP deployment. Every
// node keeps its real listen address; what changes is each node's view
// of its peers: BookFor(viewer) returns an address book whose entries
// point at link proxies dedicated to (viewer → peer), so each directed
// link can be severed, blackholed, delayed, or throttled independently
// at runtime — the socket-level analogue of the netem link controls the
// in-process fabric already has.
type Grid struct {
	mu     sync.Mutex
	real   map[wire.NodeID]string
	links  map[[2]wire.NodeID]*Proxy
	closed bool
}

// NewGrid wraps a real address book (node → actual listen address).
// Proxies are created lazily by BookFor.
func NewGrid(realBook map[wire.NodeID]string) *Grid {
	real := make(map[wire.NodeID]string, len(realBook))
	for id, addr := range realBook {
		real[id] = addr
	}
	return &Grid{
		real:  real,
		links: make(map[[2]wire.NodeID]*Proxy),
	}
}

// SetReal records (or updates) a node's real listen address.
func (g *Grid) SetReal(id wire.NodeID, addr string) {
	g.mu.Lock()
	g.real[id] = addr
	g.mu.Unlock()
}

// BookFor returns viewer's address book: its own entry is the real
// address (a node binds its own listener), every peer entry is the
// (viewer → peer) link proxy, created on first use.
func (g *Grid) BookFor(viewer wire.NodeID) (map[wire.NodeID]string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, fmt.Errorf("chaos: grid closed")
	}
	book := make(map[wire.NodeID]string, len(g.real))
	for id, addr := range g.real {
		if id == viewer {
			book[id] = addr
			continue
		}
		p, err := g.linkLocked(viewer, id)
		if err != nil {
			return nil, err
		}
		book[id] = p.Addr()
	}
	return book, nil
}

func (g *Grid) linkLocked(from, to wire.NodeID) (*Proxy, error) {
	key := [2]wire.NodeID{from, to}
	if p, ok := g.links[key]; ok {
		return p, nil
	}
	target, ok := g.real[to]
	if !ok {
		return nil, fmt.Errorf("chaos: no real address for node %v", to)
	}
	p, err := NewProxy("127.0.0.1:0", target)
	if err != nil {
		return nil, err
	}
	g.links[key] = p
	return p, nil
}

// Link returns the (from → to) proxy, if it exists yet.
func (g *Grid) Link(from, to wire.NodeID) (*Proxy, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.links[[2]wire.NodeID{from, to}]
	return p, ok
}

// Links lists every directed link that currently has a proxy.
func (g *Grid) Links() [][2]wire.NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([][2]wire.NodeID, 0, len(g.links))
	for key := range g.links {
		out = append(out, key)
	}
	return out
}

// Sever cuts the live connections of the (from → to) link.
func (g *Grid) Sever(from, to wire.NodeID) {
	if p, ok := g.Link(from, to); ok {
		p.Sever()
	}
}

// SetBlackhole toggles byte-swallowing on the (from → to) link.
func (g *Grid) SetBlackhole(from, to wire.NodeID, on bool) {
	if p, ok := g.Link(from, to); ok {
		p.SetBlackhole(on)
	}
}

// SetDelay adds one-way latency to the (from → to) link.
func (g *Grid) SetDelay(from, to wire.NodeID, d time.Duration) {
	if p, ok := g.Link(from, to); ok {
		p.SetDelay(d)
	}
}

// Restore clears blackhole/delay/throttle on the (from → to) link.
func (g *Grid) Restore(from, to wire.NodeID) {
	if p, ok := g.Link(from, to); ok {
		p.Restore()
	}
}

// SetDown takes the (from → to) link fully offline (dials refused) or
// brings it back on the same address.
func (g *Grid) SetDown(from, to wire.NodeID, on bool) error {
	if p, ok := g.Link(from, to); ok {
		return p.SetDown(on)
	}
	return nil
}

// Partition takes every link into and out of node n offline (on=true)
// or heals them in place (on=false): redials are refused, so peer
// supervisors back off and their bounded queues absorb — then shed —
// the traffic.
func (g *Grid) Partition(n wire.NodeID, on bool) error {
	g.mu.Lock()
	var ps []*Proxy
	for key, p := range g.links {
		if key[0] == n || key[1] == n {
			ps = append(ps, p)
		}
	}
	g.mu.Unlock()
	var firstErr error
	for _, p := range ps {
		if err := p.SetDown(on); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Isolate blackholes (on=true) or restores (on=false) every link into
// and out of node n — the "leader vanishes but its sockets stay open"
// scenario that only end-to-end heartbeats can detect.
func (g *Grid) Isolate(n wire.NodeID, on bool) {
	g.mu.Lock()
	var ps []*Proxy
	for key, p := range g.links {
		if key[0] == n || key[1] == n {
			ps = append(ps, p)
		}
	}
	g.mu.Unlock()
	for _, p := range ps {
		p.SetBlackhole(on)
	}
}

// ApplyProfile programs every directed replica link's one-way delay
// from a netem profile's latency model, so a real-TCP deployment runs
// on the same geography as the in-process fabric (the geo spreads
// wan3/wan5 in particular). Proxies are created eagerly for every
// directed pair; each gets the profile's mean one-way delay for its
// class pair — the proxy adds a constant delay, so the jitter and tail
// terms collapse to their expectation here. Pass the same seed the
// in-process run used for a like-for-like topology.
func (g *Grid) ApplyProfile(p netem.Profile, seed int64) error {
	m := p.NewModel(seed)
	g.mu.Lock()
	ids := make([]wire.NodeID, 0, len(g.real))
	for id := range g.real {
		ids = append(ids, id)
	}
	type hop struct {
		p *Proxy
		d time.Duration
	}
	var hops []hop
	for _, from := range ids {
		for _, to := range ids {
			if from == to {
				continue
			}
			pr, err := g.linkLocked(from, to)
			if err != nil {
				g.mu.Unlock()
				return err
			}
			hops = append(hops, hop{pr, m.MeanLatency(m.ClassOf(from), m.ClassOf(to))})
		}
	}
	g.mu.Unlock()
	for _, h := range hops {
		h.p.SetDelay(h.d)
	}
	return nil
}

// PartitionRegion takes every link crossing region r's boundary offline
// (on=true) or heals it in place (on=false). regionOf maps node →
// region (netem.Profile.RegionOf for the geo spreads). Intra-region
// links stay up: the partitioned region keeps talking to itself, it
// just cannot reach the rest of the world — the "continent drops off
// the backbone" scenario of the WAN chaos suite.
func (g *Grid) PartitionRegion(r int, regionOf func(wire.NodeID) int, on bool) error {
	g.mu.Lock()
	var ps []*Proxy
	for key, p := range g.links {
		in0, in1 := regionOf(key[0]) == r, regionOf(key[1]) == r
		if in0 != in1 {
			ps = append(ps, p)
		}
	}
	g.mu.Unlock()
	var firstErr error
	for _, p := range ps {
		if err := p.SetDown(on); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SeverNode cuts every live connection touching node n.
func (g *Grid) SeverNode(n wire.NodeID) {
	g.mu.Lock()
	var ps []*Proxy
	for key, p := range g.links {
		if key[0] == n || key[1] == n {
			ps = append(ps, p)
		}
	}
	g.mu.Unlock()
	for _, p := range ps {
		p.Sever()
	}
}

// Stats sums the counters of every link proxy.
func (g *Grid) Stats() ProxyStats {
	g.mu.Lock()
	ps := make([]*Proxy, 0, len(g.links))
	for _, p := range g.links {
		ps = append(ps, p)
	}
	g.mu.Unlock()
	var total ProxyStats
	for _, p := range ps {
		s := p.Stats()
		total.Accepted += s.Accepted
		total.Severs += s.Severs
		total.Bytes += s.Bytes
		total.Active += s.Active
	}
	return total
}

// Close shuts every link proxy down.
func (g *Grid) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	ps := make([]*Proxy, 0, len(g.links))
	for _, p := range g.links {
		ps = append(ps, p)
	}
	g.mu.Unlock()
	for _, p := range ps {
		p.Close()
	}
}
