package failure

import (
	"sync"
	"testing"
	"time"

	"gridrep/internal/wire"
)

// fakeLinks records link-fault calls for assertions.
type fakeLinks struct {
	mu         sync.Mutex
	severs     map[[2]wire.NodeID]int
	blackholes map[[2]wire.NodeID]bool
}

func newFakeLinks() *fakeLinks {
	return &fakeLinks{
		severs:     make(map[[2]wire.NodeID]int),
		blackholes: make(map[[2]wire.NodeID]bool),
	}
}

func (f *fakeLinks) Links() [][2]wire.NodeID {
	return [][2]wire.NodeID{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}}
}

func (f *fakeLinks) Sever(from, to wire.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.severs[[2]wire.NodeID{from, to}]++
}

func (f *fakeLinks) SetBlackhole(from, to wire.NodeID, on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blackholes[[2]wire.NodeID{from, to}] = on
}

func (f *fakeLinks) Restore(from, to wire.NodeID) {
	f.SetBlackhole(from, to, false)
}

func TestLinkInjectorDirect(t *testing.T) {
	fl := newFakeLinks()
	inj := NewLinks(fl, 1)
	inj.Sever(0, 1)
	inj.Blackhole(1, 2, 10*time.Millisecond)
	fl.mu.Lock()
	if fl.severs[[2]wire.NodeID{0, 1}] != 1 {
		t.Error("sever not applied")
	}
	if !fl.blackholes[[2]wire.NodeID{1, 2}] {
		t.Error("blackhole not applied")
	}
	fl.mu.Unlock()
	// The blackhole must clear itself.
	deadline := time.Now().Add(2 * time.Second)
	for {
		fl.mu.Lock()
		cleared := !fl.blackholes[[2]wire.NodeID{1, 2}]
		fl.mu.Unlock()
		if cleared {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blackhole never restored")
		}
		time.Sleep(time.Millisecond)
	}
	rep := inj.Stop()
	if rep.Severs != 1 || rep.Blackholes != 1 {
		t.Errorf("report = %+v, want 1 sever, 1 blackhole", rep)
	}
}

func TestLinkInjectorBackground(t *testing.T) {
	fl := newFakeLinks()
	inj := NewLinks(fl, 42)
	inj.Start(LinkPlan{
		Every:        5 * time.Millisecond,
		Weights:      map[LinkAction]int{LinkSever: 3, LinkBlackhole: 1},
		BlackholeFor: 10 * time.Millisecond,
	})
	time.Sleep(100 * time.Millisecond)
	rep := inj.Stop()
	if rep.Severs+rep.Blackholes == 0 {
		t.Fatalf("background injector did nothing: %+v", rep)
	}
}

func TestLinkInjectorStopWithoutStart(t *testing.T) {
	inj := NewLinks(newFakeLinks(), 7)
	if rep := inj.Stop(); rep.Severs != 0 {
		t.Errorf("unexpected report %+v", rep)
	}
}
