package failure

import (
	"math/rand"
	"sync"
	"time"

	"gridrep/internal/wire"
)

// LinkController abstracts a fabric whose individual directed links can
// be failed at runtime. chaos.Grid implements it for real TCP sockets;
// the same injection plans that torture the in-process cluster can then
// run unchanged against a multi-process deployment.
type LinkController interface {
	// Links lists the directed links currently under control.
	Links() [][2]wire.NodeID
	// Sever cuts the live connections of one link; a self-healing
	// transport is expected to reconnect through it.
	Sever(from, to wire.NodeID)
	// SetBlackhole makes one link silently swallow bytes while on.
	SetBlackhole(from, to wire.NodeID, on bool)
	// Restore clears any blackhole/delay on one link.
	Restore(from, to wire.NodeID)
}

// LinkAction identifies one kind of injected link fault.
type LinkAction int

const (
	// LinkSever cuts a random link's live connections.
	LinkSever LinkAction = iota
	// LinkBlackhole blackholes a random link for BlackholeFor.
	LinkBlackhole
)

// LinkPlan schedules background link-fault injection.
type LinkPlan struct {
	// Every is the injection period (default 250ms).
	Every time.Duration
	// Weights gives the relative probability of each action; zero
	// disables it. Default: severs only.
	Weights map[LinkAction]int
	// BlackholeFor bounds how long a blackholed link stays dark
	// (default 2×Every).
	BlackholeFor time.Duration
}

// LinkReport tallies what a LinkInjector did.
type LinkReport struct {
	Severs     int
	Blackholes int
}

// LinkInjector drives link faults against one controller.
type LinkInjector struct {
	lc  LinkController
	rng *rand.Rand

	mu      sync.Mutex
	rep     LinkReport
	stop    chan struct{}
	done    chan struct{}
	closed  bool
	started bool
}

// NewLinks returns an injector for the controller.
func NewLinks(lc LinkController, seed int64) *LinkInjector {
	return &LinkInjector{
		lc:   lc,
		rng:  rand.New(rand.NewSource(seed)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Sever cuts one specific link now.
func (i *LinkInjector) Sever(from, to wire.NodeID) {
	i.lc.Sever(from, to)
	i.note(func(r *LinkReport) { r.Severs++ })
}

// Blackhole darkens one specific link for d, then restores it.
func (i *LinkInjector) Blackhole(from, to wire.NodeID, d time.Duration) {
	i.lc.SetBlackhole(from, to, true)
	i.note(func(r *LinkReport) { r.Blackholes++ })
	time.AfterFunc(d, func() { i.lc.SetBlackhole(from, to, false) })
}

// SeverRandom cuts one random controlled link.
func (i *LinkInjector) SeverRandom() ([2]wire.NodeID, bool) {
	link, ok := i.pick()
	if !ok {
		return link, false
	}
	i.Sever(link[0], link[1])
	return link, true
}

// BlackholeRandom darkens one random controlled link for d.
func (i *LinkInjector) BlackholeRandom(d time.Duration) ([2]wire.NodeID, bool) {
	link, ok := i.pick()
	if !ok {
		return link, false
	}
	i.Blackhole(link[0], link[1], d)
	return link, true
}

func (i *LinkInjector) pick() ([2]wire.NodeID, bool) {
	links := i.lc.Links()
	if len(links) == 0 {
		return [2]wire.NodeID{}, false
	}
	i.mu.Lock()
	idx := i.rng.Intn(len(links))
	i.mu.Unlock()
	return links[idx], true
}

func (i *LinkInjector) note(f func(*LinkReport)) {
	i.mu.Lock()
	defer i.mu.Unlock()
	f(&i.rep)
}

// Start launches background injection per the plan. Call Stop to end it.
func (i *LinkInjector) Start(plan LinkPlan) {
	if plan.Every == 0 {
		plan.Every = 250 * time.Millisecond
	}
	if plan.Weights == nil {
		plan.Weights = map[LinkAction]int{LinkSever: 1}
	}
	if plan.BlackholeFor == 0 {
		plan.BlackholeFor = 2 * plan.Every
	}
	i.mu.Lock()
	i.started = true
	i.mu.Unlock()
	go i.run(plan)
}

func (i *LinkInjector) run(plan LinkPlan) {
	defer close(i.done)
	actions := []LinkAction{LinkSever, LinkBlackhole}
	var total int
	for _, a := range actions {
		total += plan.Weights[a]
	}
	if total == 0 {
		return
	}
	ticker := time.NewTicker(plan.Every)
	defer ticker.Stop()
	for {
		select {
		case <-i.stop:
			return
		case <-ticker.C:
		}
		i.mu.Lock()
		pick := i.rng.Intn(total)
		i.mu.Unlock()
		var chosen LinkAction
		for _, a := range actions {
			if pick < plan.Weights[a] {
				chosen = a
				break
			}
			pick -= plan.Weights[a]
		}
		switch chosen {
		case LinkSever:
			i.SeverRandom()
		case LinkBlackhole:
			i.BlackholeRandom(plan.BlackholeFor)
		}
	}
}

// Stop ends background injection and returns the tally. It is safe to
// call on an injector that was never started.
func (i *LinkInjector) Stop() LinkReport {
	i.mu.Lock()
	if !i.closed {
		i.closed = true
		close(i.stop)
	}
	started := i.started
	i.mu.Unlock()
	if started {
		<-i.done
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rep
}
