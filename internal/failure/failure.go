// Package failure injects faults into a running cluster: crash/restart
// of replicas, forced leader switches (§3.6), message loss, and link
// partitions. Tests use it to verify that safety holds under churn and
// to measure the §3.6 claim that X-Paxos and T-Paxos are more sensitive
// to leader switches than the basic protocol.
package failure

import (
	"math/rand"
	"sync"
	"time"

	"gridrep/internal/cluster"
	"gridrep/internal/netem"
	"gridrep/internal/wire"
)

// Action identifies one kind of injected fault.
type Action int

const (
	// ActionLeaderSwitch forces the Ω modules to abandon the current
	// leader.
	ActionLeaderSwitch Action = iota
	// ActionCrashBackup crashes a random non-leader replica and
	// restarts it after RecoverAfter.
	ActionCrashBackup
	// ActionCrashLeader crashes the current leader and restarts it
	// after RecoverAfter.
	ActionCrashLeader
	// ActionLossBurst raises client<->replica loss for BurstLen.
	ActionLossBurst
)

// Plan schedules background fault injection.
type Plan struct {
	// Every is the injection period.
	Every time.Duration
	// Weights gives the relative probability of each Action; a zero
	// weight disables the action. Defaults: leader switches only.
	Weights map[Action]int
	// RecoverAfter delays the restart of a crashed replica (default
	// Every/2).
	RecoverAfter time.Duration
	// LossProb and BurstLen parameterize ActionLossBurst.
	LossProb float64
	BurstLen time.Duration
}

// Report summarizes what an injector did.
type Report struct {
	Switches   int
	Crashes    int
	Restarts   int
	LossBursts int
}

// Injector drives faults against one cluster.
type Injector struct {
	c   *cluster.Cluster
	rng *rand.Rand

	mu      sync.Mutex
	rep     Report
	stop    chan struct{}
	done    chan struct{}
	closed  bool
	started bool
}

// New returns an injector for the cluster.
func New(c *cluster.Cluster, seed int64) *Injector {
	return &Injector{
		c:    c,
		rng:  rand.New(rand.NewSource(seed)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// SwitchLeader forces one leader switch and waits until a different
// replica leads (or the timeout passes). It returns the new leader.
func (i *Injector) SwitchLeader(timeout time.Duration) (wire.NodeID, bool) {
	old, ok := i.c.Leader()
	if !ok {
		return 0, false
	}
	i.c.SuspectLeader()
	i.note(func(r *Report) { r.Switches++ })
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if l, ok := i.c.Leader(); ok && l != old {
			return l, true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return 0, false
}

// CrashBackup crashes one random non-leader replica and returns its ID.
func (i *Injector) CrashBackup() (wire.NodeID, bool) {
	leader, _ := i.c.Leader()
	var candidates []wire.NodeID
	for _, id := range i.c.Running() {
		if id != leader {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	id := candidates[i.rng.Intn(len(candidates))]
	i.c.Crash(id)
	i.note(func(r *Report) { r.Crashes++ })
	return id, true
}

// CrashLeader crashes the current leader and returns its ID.
func (i *Injector) CrashLeader() (wire.NodeID, bool) {
	leader, ok := i.c.Leader()
	if !ok {
		return 0, false
	}
	i.c.Crash(leader)
	i.note(func(r *Report) { r.Crashes++ })
	return leader, true
}

// Restart recovers a crashed replica.
func (i *Injector) Restart(id wire.NodeID) error {
	if err := i.c.Restart(id); err != nil {
		return err
	}
	i.note(func(r *Report) { r.Restarts++ })
	return nil
}

// LossBurst raises client<->replica loss to p for d, then clears it.
func (i *Injector) LossBurst(p float64, d time.Duration) {
	m := i.c.Net.Model()
	m.SetLoss(netem.ClassClient, netem.ClassReplica, p)
	m.SetLoss(netem.ClassReplica, netem.ClassClient, p)
	i.note(func(r *Report) { r.LossBursts++ })
	time.AfterFunc(d, func() {
		m.SetLoss(netem.ClassClient, netem.ClassReplica, 0)
		m.SetLoss(netem.ClassReplica, netem.ClassClient, 0)
	})
}

func (i *Injector) note(f func(*Report)) {
	i.mu.Lock()
	defer i.mu.Unlock()
	f(&i.rep)
}

// Start launches background injection per the plan. Call Stop to end it.
func (i *Injector) Start(plan Plan) {
	if plan.Every == 0 {
		plan.Every = 500 * time.Millisecond
	}
	if plan.Weights == nil {
		plan.Weights = map[Action]int{ActionLeaderSwitch: 1}
	}
	if plan.RecoverAfter == 0 {
		plan.RecoverAfter = plan.Every / 2
	}
	if plan.BurstLen == 0 {
		plan.BurstLen = plan.Every / 4
	}
	if plan.LossProb == 0 {
		plan.LossProb = 0.2
	}
	i.mu.Lock()
	i.started = true
	i.mu.Unlock()
	go i.run(plan)
}

func (i *Injector) run(plan Plan) {
	defer close(i.done)
	var total int
	actions := []Action{ActionLeaderSwitch, ActionCrashBackup, ActionCrashLeader, ActionLossBurst}
	for _, a := range actions {
		total += plan.Weights[a]
	}
	if total == 0 {
		return
	}
	ticker := time.NewTicker(plan.Every)
	defer ticker.Stop()
	for {
		select {
		case <-i.stop:
			return
		case <-ticker.C:
		}
		i.mu.Lock()
		pick := i.rng.Intn(total)
		i.mu.Unlock()
		var chosen Action
		for _, a := range actions {
			if pick < plan.Weights[a] {
				chosen = a
				break
			}
			pick -= plan.Weights[a]
		}
		switch chosen {
		case ActionLeaderSwitch:
			i.SwitchLeader(plan.Every)
		case ActionCrashBackup:
			if id, ok := i.CrashBackup(); ok {
				i.scheduleRestart(id, plan.RecoverAfter)
			}
		case ActionCrashLeader:
			if id, ok := i.CrashLeader(); ok {
				i.scheduleRestart(id, plan.RecoverAfter)
			}
		case ActionLossBurst:
			i.LossBurst(plan.LossProb, plan.BurstLen)
		}
	}
}

func (i *Injector) scheduleRestart(id wire.NodeID, after time.Duration) {
	t := time.NewTimer(after)
	go func() {
		defer t.Stop()
		select {
		case <-t.C:
			_ = i.Restart(id) // best effort; the replica may be racing a close
		case <-i.stop:
		}
	}()
}

// Stop ends background injection and returns the tally. It is safe to
// call on an injector that was never started.
func (i *Injector) Stop() Report {
	i.mu.Lock()
	if !i.closed {
		i.closed = true
		close(i.stop)
	}
	started := i.started
	i.mu.Unlock()
	if started {
		<-i.done
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rep
}
