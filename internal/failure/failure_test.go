package failure

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/service"
)

func newCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Service:           service.KVFactory,
		HeartbeatInterval: 5 * time.Millisecond,
		ClientRetryEvery:  50 * time.Millisecond,
		ClientDeadline:    20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSwitchLeader(t *testing.T) {
	c := newCluster(t)
	inj := New(c, 1)
	defer inj.Stop()
	old, _ := c.Leader()
	neu, ok := inj.SwitchLeader(5 * time.Second)
	if !ok || neu == old {
		t.Fatalf("switch failed: new=%v ok=%v", neu, ok)
	}
	rep := inj.Stop()
	if rep.Switches != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCrashBackupAndRestart(t *testing.T) {
	c := newCluster(t)
	inj := New(c, 1)
	defer inj.Stop()
	leader, _ := c.Leader()
	id, ok := inj.CrashBackup()
	if !ok {
		t.Fatal("no backup to crash")
	}
	if id == leader {
		t.Fatalf("crashed the leader (%v)", id)
	}
	if len(c.Running()) != 2 {
		t.Fatalf("running = %v", c.Running())
	}
	if err := inj.Restart(id); err != nil {
		t.Fatal(err)
	}
	if len(c.Running()) != 3 {
		t.Fatalf("running after restart = %v", c.Running())
	}
	rep := inj.Stop()
	if rep.Crashes != 1 || rep.Restarts != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCrashLeaderFailsOver(t *testing.T) {
	c := newCluster(t)
	inj := New(c, 1)
	defer inj.Stop()
	old, ok := inj.CrashLeader()
	if !ok {
		t.Fatal("no leader to crash")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if l, ok := c.Leader(); ok && l != old {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no failover")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestLossBurstClears(t *testing.T) {
	c := newCluster(t)
	inj := New(c, 1)
	defer inj.Stop()
	inj.LossBurst(1.0, 50*time.Millisecond)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// During total loss the request needs retries, but once the burst
	// clears it must succeed.
	if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
		t.Fatalf("write across loss burst: %v", err)
	}
}

func TestStopIdempotentAndUnstarted(t *testing.T) {
	c := newCluster(t)
	inj := New(c, 1)
	if rep := inj.Stop(); rep != (Report{}) {
		t.Fatalf("unstarted report = %+v", rep)
	}
	inj.Stop() // second stop must not panic
}

// TestSoakExactlyOnceUnderChurn is the headline fault test: clients
// increment a replicated counter while leader switches, crashes,
// restarts, and loss bursts rain down. Every acknowledged increment must
// be applied exactly once, and all replicas must converge to identical
// state.
func TestSoakExactlyOnceUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	c := newCluster(t)
	inj := New(c, 42)
	inj.Start(Plan{
		Every: 150 * time.Millisecond,
		Weights: map[Action]int{
			ActionLeaderSwitch: 3,
			ActionCrashBackup:  2,
			ActionCrashLeader:  1,
			ActionLossBurst:    2,
		},
		RecoverAfter: 100 * time.Millisecond,
		LossProb:     0.25,
		BurstLen:     50 * time.Millisecond,
	})

	const nClients = 4
	var acked atomic.Int64
	var wg sync.WaitGroup
	stopAt := time.Now().Add(3 * time.Second)
	errCh := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cli *client.Client) {
			defer wg.Done()
			defer cli.Close()
			for time.Now().Before(stopAt) {
				_, err := cli.Write(service.KVAdd("ctr", 1))
				switch {
				case err == nil:
					acked.Add(1)
				case errors.Is(err, client.ErrTimeout):
					// The increment may or may not have committed; a
					// timed-out client must stop counting on it. Keep
					// the invariant checkable by not reusing this
					// client (its retransmit could still land).
					errCh <- nil
					return
				default:
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(cli)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	rep := inj.Stop()
	t.Logf("injection report: %+v, acked increments: %d", rep, acked.Load())
	if rep.Switches+rep.Crashes == 0 {
		t.Fatal("soak ran without injecting anything")
	}

	// Ensure everyone is back and converged.
	for _, id := range c.IDs() {
		if _, ok := c.Replica(id); !ok {
			if err := c.Restart(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := c.WaitForLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifier, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer verifier.Close()
	res, err := verifier.Read(service.KVGet("ctr"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := service.KVInt(res)
	// Exactly-once: the counter must be at least every acknowledged
	// increment (acks are binding) and no duplicates may inflate it
	// beyond acked + the bounded number of in-flight timeouts (at most
	// one per client).
	if got < acked.Load() {
		t.Fatalf("counter %d < %d acknowledged increments: lost writes", got, acked.Load())
	}
	if got > acked.Load()+nClients {
		t.Fatalf("counter %d > %d+%d: duplicated writes", got, acked.Load(), nClients)
	}

	// All replicas converge to identical state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var snaps [][]byte
		for _, id := range c.IDs() {
			rep, ok := c.Replica(id)
			if !ok {
				continue
			}
			var snap []byte
			var chosen, applied uint64
			rep.Inspect(func(r *core.Replica) {
				snap = r.Service().Snapshot()
				chosen, applied = r.Chosen(), r.Applied()
			})
			if chosen != applied {
				snap = nil // not converged yet
			}
			snaps = append(snaps, snap)
		}
		same := len(snaps) == 3
		for _, s := range snaps {
			if s == nil || !bytes.Equal(s, snaps[0]) {
				same = false
			}
		}
		if same {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas did not reconverge after churn")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLeaderSwitchSensitivity quantifies §3.6: under periodic leader
// switches, open T-Paxos transactions abort while basic-protocol writes
// simply retry and succeed.
func TestLeaderSwitchSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	c := newCluster(t)
	inj := New(c, 7)
	defer inj.Stop()

	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	aborts, commits := 0, 0
	for round := 0; round < 6; round++ {
		tx := cli.Begin()
		_, err := tx.Do(service.KVAdd("x", 1))
		if err == nil {
			// Switch leaders mid-transaction.
			inj.SwitchLeader(5 * time.Second)
			err = tx.Commit()
		}
		if errors.Is(err, client.ErrAborted) {
			aborts++
		} else if err == nil {
			commits++
		} else {
			t.Fatalf("round %d: %v", round, err)
		}
		// Writes always go through across the same disruption.
		if _, err := cli.Write(service.KVAdd("y", 1)); err != nil {
			t.Fatalf("basic write after switch: %v", err)
		}
	}
	t.Logf("transactions: %d aborted, %d committed across 6 leader switches", aborts, commits)
	if aborts == 0 {
		t.Fatal("§3.6 predicts open transactions abort on leader switches; none did")
	}
}
