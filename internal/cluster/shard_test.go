package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/service"
	"gridrep/internal/shard"
	"gridrep/internal/wire"
)

func kvFactory() service.Service { return service.NewKV() }

func newShardedCluster(t *testing.T, n, groups int) *Cluster {
	t.Helper()
	c := newTestCluster(t, Config{N: n, Groups: groups, Service: kvFactory})
	if _, err := c.WaitForAllLeaders(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardedLeadershipSpread: group g's leader converges to replica
// g mod N — the rank rotation of DESIGN.md §13 spreads the leader role
// (and its execute + fsync load) across the membership.
func TestShardedLeadershipSpread(t *testing.T) {
	const n, groups = 3, 4
	c := newShardedCluster(t, n, groups)
	deadline := time.Now().Add(10 * time.Second)
	for g := 0; g < groups; g++ {
		want := wire.NodeID(g % n)
		for {
			if l, ok := c.GroupLeader(g); ok && l == want {
				break
			}
			if time.Now().After(deadline) {
				l, ok := c.GroupLeader(g)
				t.Fatalf("group %d leader = %v,%v; want %v", g, l, ok, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestShardedWritesSpreadAcrossGroups: one group-unaware client writes
// many keys; the writes must commit, read back correctly, and actually
// land in more than one group's log.
func TestShardedWritesSpreadAcrossGroups(t *testing.T) {
	const n, groups = 3, 4
	c := newShardedCluster(t, n, groups)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("k%03d", i)
		if _, err := cli.Write(service.KVPut(k, []byte(k))); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("k%03d", i)
		rep, err := cli.Read(service.KVGet(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if v, _ := service.KVReply(rep); string(v) != k {
			t.Fatalf("get %s = %q", k, v)
		}
	}

	// The router must have spread those keys over >1 group, and each
	// such group's replicas must show commit progress.
	r := shard.NewRouter(groups, service.NewKV())
	perGroup := map[uint32]int{}
	for i := 0; i < 24; i++ {
		perGroup[r.GroupForOp(service.KVPut(fmt.Sprintf("k%03d", i), nil))]++
	}
	if len(perGroup) < 2 {
		t.Fatalf("24 keys all hashed to one group: %v", perGroup)
	}
	for g, cnt := range perGroup {
		rep, ok := c.GroupReplica(0, int(g))
		if !ok {
			t.Fatalf("group %d replica missing", g)
		}
		if h := rep.Health(); h.CommitIndex == 0 {
			t.Fatalf("group %d got %d keys but commit index is 0 (health %+v)", g, cnt, h)
		}
	}
}

// TestShardedMetricsAndHealth: one registry per node with per-group
// prefixes, and GroupHealths exposes every group's position.
func TestShardedMetricsAndHealth(t *testing.T) {
	const n, groups = 3, 2
	c := newShardedCluster(t, n, groups)

	hs := c.GroupHealths(0)
	if len(hs) != groups {
		t.Fatalf("GroupHealths has %d entries, want %d", len(hs), groups)
	}

	reg, ok := c.NodeMetrics(0)
	if !ok {
		t.Fatal("sharded node has no registry")
	}
	var plain, prefixed bool
	for _, name := range reg.Names() {
		if strings.HasPrefix(name, "group_1_") {
			prefixed = true
		} else if !strings.HasPrefix(name, "group_") {
			plain = true
		}
	}
	if !plain || !prefixed {
		t.Fatalf("registry must hold group-0 (unprefixed) and group-1 (prefixed) instruments: %v", reg.Names())
	}
}

// TestShardedGroupFailoverIsolation: suspecting one group's leader moves
// only that group's leadership; sibling groups keep their leaders and
// the whole key space stays writable.
func TestShardedGroupFailoverIsolation(t *testing.T) {
	const n, groups = 3, 3
	c := newShardedCluster(t, n, groups)
	before := make([]wire.NodeID, groups)
	for g := 0; g < groups; g++ {
		l, ok := c.GroupLeader(g)
		if !ok {
			t.Fatalf("group %d has no leader", g)
		}
		before[g] = l
	}

	c.SuspectGroupLeader(1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if l, ok := c.GroupLeader(1); ok && l != before[1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group 1 leadership never moved")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, g := range []int{0, 2} {
		if l, ok := c.GroupLeader(g); !ok || l != before[g] {
			t.Fatalf("group %d leader moved too: %v (was %v)", g, l, before[g])
		}
	}

	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("f%03d", i)
		if _, err := cli.Write(service.KVPut(k, []byte(k))); err != nil {
			t.Fatalf("put %s after failover: %v", k, err)
		}
	}
}

// TestShardedCrossGroupTxnRefused: a transaction whose second op hashes
// to a different group fails with ErrCrossGroup (typed, end to end),
// while a single-group transaction commits.
func TestShardedCrossGroupTxnRefused(t *testing.T) {
	const n, groups = 3, 4
	c := newShardedCluster(t, n, groups)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Find two keys in different groups and two in the same group.
	r := shard.NewRouter(groups, service.NewKV())
	g0 := r.GroupForOp(service.KVPut("k000", nil))
	var cross, same string
	for i := 1; i < 1000 && (cross == "" || same == ""); i++ {
		k := fmt.Sprintf("k%03d", i)
		if g := r.GroupForOp(service.KVPut(k, nil)); g != g0 && cross == "" {
			cross = k
		} else if g == g0 && same == "" {
			same = k
		}
	}
	if cross == "" || same == "" {
		t.Fatal("could not find key pair")
	}

	// Same-group transaction commits.
	txn := cli.Begin()
	if _, err := txn.Do(service.KVPut("k000", []byte("a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Do(service.KVPut(same, []byte("b"))); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// Cross-group transaction is refused with the typed error.
	txn = cli.Begin()
	if _, err := txn.Do(service.KVPut("k000", []byte("a"))); err != nil {
		t.Fatal(err)
	}
	_, err = txn.Do(service.KVPut(cross, []byte("b")))
	if !errors.Is(err, client.ErrCrossGroup) {
		t.Fatalf("cross-group txn op: err = %v, want ErrCrossGroup", err)
	}
	_ = txn.Abort()
}

// TestShardedWALLayout: group 0 keeps the pre-sharding WAL path, other
// groups nest under group-<g>/ — so a -groups 1 data dir is readable by
// (and byte-compatible with) a pre-sharding binary.
func TestShardedWALLayout(t *testing.T) {
	dir := t.TempDir()
	c := newTestCluster(t, Config{N: 3, Groups: 2, Service: kvFactory, DataDir: dir})
	if _, err := c.WaitForAllLeaders(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Touch both groups so both WAL families exist and carry entries.
	r := shard.NewRouter(2, service.NewKV())
	var hit [2]bool
	for i := 0; i < 100 && !(hit[0] && hit[1]); i++ {
		k := fmt.Sprintf("w%03d", i)
		g := r.GroupForOp(service.KVPut(k, nil))
		if hit[g] {
			continue
		}
		hit[g] = true
		if _, err := cli.Write(service.KVPut(k, []byte(k))); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 3; id++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("replica-%d.wal", id))); err != nil {
			t.Fatalf("group-0 WAL: %v", err)
		}
		if _, err := os.Stat(filepath.Join(dir, "group-1", fmt.Sprintf("replica-%d.wal", id))); err != nil {
			t.Fatalf("group-1 WAL: %v", err)
		}
	}
}
