package cluster

import (
	"testing"
	"time"

	"gridrep/internal/netem"
	"gridrep/internal/service"
	"gridrep/internal/wire"
)

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 5 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestDefaults(t *testing.T) {
	c := newTestCluster(t, Config{})
	if len(c.IDs()) != 3 {
		t.Fatalf("default N = %d, want 3", len(c.IDs()))
	}
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDerivedTimeouts(t *testing.T) {
	cfg := Config{Profile: netem.WAN(0)}
	cfg.fillDefaults()
	// WAN one-way is 45ms; the heartbeat interval must comfortably
	// exceed it so Ω is stable, and retries must exceed an RTT.
	if cfg.HeartbeatInterval < 2*netem.WAN(0).MaxOneWay {
		t.Fatalf("heartbeat %v too aggressive for WAN", cfg.HeartbeatInterval)
	}
	if cfg.RetryTimeout < 2*netem.WAN(0).MaxOneWay {
		t.Fatalf("retry %v below one RTT", cfg.RetryTimeout)
	}
	if cfg.ElectionTimeout <= cfg.HeartbeatInterval {
		t.Fatal("election timeout must exceed the heartbeat interval")
	}
}

func TestRunningAndReplicaAccessors(t *testing.T) {
	c := newTestCluster(t, Config{})
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Running(); len(got) != 3 {
		t.Fatalf("Running = %v", got)
	}
	if _, ok := c.Replica(1); !ok {
		t.Fatal("Replica(1) missing")
	}
	if _, ok := c.Replica(99); ok {
		t.Fatal("Replica(99) exists")
	}
	c.Crash(1)
	if got := c.Running(); len(got) != 2 {
		t.Fatalf("Running after crash = %v", got)
	}
	if _, ok := c.Replica(1); ok {
		t.Fatal("crashed replica still returned")
	}
}

func TestRestartErrors(t *testing.T) {
	c := newTestCluster(t, Config{})
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(0); err == nil {
		t.Fatal("restarting a running replica must fail")
	}
	c.Crash(0)
	if err := c.Restart(0); err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
}

func TestClientsGetDistinctIDs(t *testing.T) {
	c := newTestCluster(t, Config{})
	a, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.ID() == b.ID() {
		t.Fatal("clients share an ID")
	}
	if !a.ID().IsClient() || !b.ID().IsClient() {
		t.Fatal("client IDs outside the client space")
	}
}

func TestCloseIdempotent(t *testing.T) {
	c := newTestCluster(t, Config{})
	c.Close()
	c.Close()
}

func TestServiceFactoryPerReplica(t *testing.T) {
	instances := 0
	c := newTestCluster(t, Config{Service: func() service.Service {
		instances++
		return service.NewNoop()
	}})
	_ = c
	if instances != 3 {
		t.Fatalf("factory called %d times, want once per replica", instances)
	}
}

func TestStoresRetainedAcrossRestart(t *testing.T) {
	c := newTestCluster(t, Config{Service: service.KVFactory})
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	// Crash and restart a backup; its store (and thus promise state)
	// must be the same object.
	leader, _ := c.Leader()
	var backup wire.NodeID
	for _, id := range c.IDs() {
		if id != leader {
			backup = id
			break
		}
	}
	st := c.cfg.Stores[backup]
	c.Crash(backup)
	if err := c.Restart(backup); err != nil {
		t.Fatal(err)
	}
	if c.cfg.Stores[backup] != st {
		t.Fatal("restart replaced the stable store")
	}
}

func TestSuspectLeaderNoLeaderIsNoop(t *testing.T) {
	c := newTestCluster(t, Config{})
	// Before any leader exists, SuspectLeader must not panic.
	c.SuspectLeader()
}
