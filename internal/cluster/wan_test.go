package cluster

import (
	"testing"
	"time"

	"gridrep/internal/netem"
	"gridrep/internal/service"
	"gridrep/internal/wire"
)

// TestProfileTimeoutDerivation pins the contract referenced by the
// netem.Profile.MaxOneWay doc comment: for every shipped profile, the
// declared MaxOneWay really bounds the worst one-way delay the model can
// sample (base + jitter + tail), and the timeouts fillDefaults derives
// from it keep Ω stable — a heartbeat interval that covers a full
// one-way trip twice over, an election timeout several heartbeats wide,
// and a retry timeout that exceeds a round trip even on the worst link.
func TestProfileTimeoutDerivation(t *testing.T) {
	for _, name := range netem.ProfileNames() {
		p, err := netem.ProfileByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := p.NewModel(1).MaxOneWay(); got > p.MaxOneWay {
			t.Errorf("%s: model worst one-way %v exceeds declared MaxOneWay %v (jitter+tail not covered)",
				name, got, p.MaxOneWay)
		}
		cfg := Config{Profile: p}
		cfg.fillDefaults()
		if cfg.HeartbeatInterval < 25*time.Millisecond {
			t.Errorf("%s: heartbeat %v below the 25ms floor", name, cfg.HeartbeatInterval)
		}
		if cfg.HeartbeatInterval < 2*p.MaxOneWay {
			t.Errorf("%s: heartbeat %v < 2x MaxOneWay %v — tail samples would false-suspect the leader",
				name, cfg.HeartbeatInterval, p.MaxOneWay)
		}
		if cfg.ElectionTimeout != 8*cfg.HeartbeatInterval {
			t.Errorf("%s: election timeout %v, want 8x heartbeat %v",
				name, cfg.ElectionTimeout, cfg.HeartbeatInterval)
		}
		if cfg.RetryTimeout < 4*cfg.HeartbeatInterval || cfg.RetryTimeout < 6*p.MaxOneWay {
			t.Errorf("%s: retry timeout %v, want >= max(4x heartbeat, 6x MaxOneWay)",
				name, cfg.RetryTimeout)
		}
		// Long-haul profiles carry tuning hints and fillDefaults must
		// adopt them when the caller left the knobs zero.
		if p.PipelineDepth > 0 && cfg.PipelineDepth != p.PipelineDepth {
			t.Errorf("%s: pipeline depth %d, want profile hint %d",
				name, cfg.PipelineDepth, p.PipelineDepth)
		}
		if p.CommitFlushDelay > 0 && cfg.CommitFlushDelay != p.CommitFlushDelay {
			t.Errorf("%s: commit-flush delay %v, want profile hint %v",
				name, cfg.CommitFlushDelay, p.CommitFlushDelay)
		}
	}
	// The geo spreads must be the profiles with geography attached —
	// the WAN tests below rely on RegionOf.
	for _, name := range []string{"wan3", "wan5"} {
		p, _ := netem.ProfileByName(name)
		if p.Regions == 0 || p.RegionOf == nil {
			t.Errorf("%s: no region mapping", name)
		}
	}
}

// cutRegion severs (or heals) every replica link crossing region r's
// boundary on the in-process fabric — the netem analogue of the chaos
// grid's PartitionRegion. Clients are left attached so the test can
// observe the cluster from outside the partition.
func cutRegion(c *Cluster, regionOf func(wire.NodeID) int, r int, on bool) {
	m := c.Net.Model()
	ids := c.IDs()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			if (regionOf(a) == r) != (regionOf(b) == r) {
				if on {
					m.Cut(a, b)
				} else {
					m.Heal(a, b)
				}
			}
		}
	}
}

// TestWANNearReadLinearizableUnderRegionPartition is the WAN
// linearizability bracket (ISSUE 10): on the compressed wan3 geography
// with nearest-replica reads and RTT placement enabled, a client
// interleaves acknowledged writes with reads while first the leader's
// region and then the client's own region drop off the backbone. The
// invariants: every read observes at least the client's own acknowledged
// writes (reads never travel backwards), and after healing, the counter
// equals exactly the number of acknowledged increments — zero acked
// writes lost, none duplicated, under partition and the leader failover
// it forces.
func TestWANNearReadLinearizableUnderRegionPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN bracket skipped in -short mode")
	}
	prof := netem.WAN3Scaled(0.02) // real shape, ~2ms cross-region hops
	c := newTestCluster(t, Config{
		N:                 3,
		Profile:           prof,
		Seed:              1,
		Service:           service.KVFactory,
		NearReads:         true,
		RTTPlacement:      true,
		HeartbeatInterval: 25 * time.Millisecond,
		ClientRetryEvery:  50 * time.Millisecond,
		ClientDeadline:    30 * time.Second,
	})
	if _, err := c.WaitForLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	clientRegion := prof.RegionOf(cli.ID())

	acked := 0
	var lastRead int64
	write := func() {
		t.Helper()
		if _, err := cli.Write(service.KVAdd("ctr", 1)); err != nil {
			t.Fatalf("write %d: %v", acked, err)
		}
		acked++
	}
	read := func() {
		t.Helper()
		res, err := cli.Read(service.KVGet("ctr"))
		if err != nil {
			t.Fatalf("read after %d acked: %v", acked, err)
		}
		got, ok := service.KVInt(res)
		if !ok {
			t.Fatalf("read reply not an int: %q", res)
		}
		if got < int64(acked) {
			t.Fatalf("read %d < %d acked writes — a read missed an acknowledged write", got, acked)
		}
		if got < lastRead {
			t.Fatalf("read %d < previous read %d — reads travelled backwards", got, lastRead)
		}
		lastRead = got
	}
	phase := func(n int) {
		for i := 0; i < n; i++ {
			write()
			read()
		}
	}

	// Healthy geography.
	phase(5)

	// The leader's continent drops off the backbone: the two remaining
	// regions elect a new leader and keep acknowledging. If the client's
	// near replica is inside the lost region, its near reads expire and
	// fall back to the leader path — slower, never wrong.
	lead, ok := c.Leader()
	if !ok {
		t.Fatal("no leader before partition")
	}
	lostRegion := prof.RegionOf(lead)
	cutRegion(c, prof.RegionOf, lostRegion, true)
	phase(5)
	cutRegion(c, prof.RegionOf, lostRegion, false)

	// The client's own region partitions next (when distinct): its
	// nearest replica is now the one that cannot reach a confirm quorum.
	if clientRegion != lostRegion {
		cutRegion(c, prof.RegionOf, clientRegion, true)
		phase(5)
		cutRegion(c, prof.RegionOf, clientRegion, false)
	}

	// Healed: full geography again, and the exact count must hold.
	phase(5)
	res, err := cli.Read(service.KVGet("ctr"))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := service.KVInt(res)
	if !ok {
		t.Fatalf("final read not an int: %q", res)
	}
	if got != int64(acked) {
		t.Fatalf("final counter %d, want exactly %d acknowledged increments", got, acked)
	}
}

// TestWANNearReadsServeFromNearReplica pins that the optimisation is
// actually on: on the wan3 geography a remote client's reads increment
// some replica's near-read counter rather than all landing on the
// leader.
func TestWANNearReadsServeFromNearReplica(t *testing.T) {
	prof := netem.WAN3Scaled(0.02)
	c := newTestCluster(t, Config{
		N:                 3,
		Profile:           prof,
		Seed:              1,
		Service:           service.KVFactory,
		NearReads:         true,
		HeartbeatInterval: 25 * time.Millisecond,
		ClientRetryEvery:  50 * time.Millisecond,
		ClientDeadline:    30 * time.Second,
	})
	if _, err := c.WaitForLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	const reads = 10
	for i := 0; i < reads; i++ {
		if _, err := cli.Read(service.KVGet("k")); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	var near uint64
	for _, id := range c.IDs() {
		rep, ok := c.Replica(id)
		if !ok {
			continue
		}
		near += rep.Stats().ReadsNear
	}
	if near == 0 {
		t.Fatalf("no reads served via the near path after %d reads with NearReads on", reads)
	}
}
