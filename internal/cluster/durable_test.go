package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gridrep/internal/core"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

// crashWithMemoryLoss models a real crash for a WAL-backed replica: the
// replica stops, and its retained Store object — which still holds staged
// (never-flushed) records in RAM — is replaced by a fresh replay of the
// on-disk WAL, keeping only what a restart would actually see.
func crashWithMemoryLoss(t *testing.T, c *Cluster, id wire.NodeID, dataDir string) {
	t.Helper()
	c.Crash(id)
	fresh, err := storage.OpenFile(filepath.Join(dataDir, fmt.Sprintf("replica-%d.wal", id)))
	if err != nil {
		t.Fatal(err)
	}
	c.SetStore(id, fresh)
	if err := c.Restart(id); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCrashRestartKeepsAckedWrites drives writes through WAL-backed
// replicas, crashes the leader (losing its in-memory staged state), then a
// backup, and checks that every acknowledged write is still readable —
// the §3.3 durability argument end to end through the group-commit
// pipeline.
func TestDurableCrashRestartKeepsAckedWrites(t *testing.T) {
	dataDir := t.TempDir()
	c := newTestCluster(t, Config{
		Service:    service.KVFactory,
		DataDir:    dataDir,
		SyncPolicy: storage.SyncPolicyBatch,
	})
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	acked := map[string]string{}
	put := func(i int) {
		k, v := fmt.Sprintf("k%03d", i), fmt.Sprintf("v%03d", i)
		if _, err := cli.Write(service.KVPut(k, []byte(v))); err != nil {
			t.Fatalf("write %s: %v", k, err)
		}
		acked[k] = v
	}
	checkAll := func(stage string) {
		t.Helper()
		for k, v := range acked {
			res, err := cli.Read(service.KVGet(k))
			if err != nil {
				t.Fatalf("%s: read %s: %v", stage, k, err)
			}
			got, found := service.KVReply(res)
			if !found || string(got) != v {
				t.Fatalf("%s: %s = %q (found=%v), want %q (acked write lost)", stage, k, got, found, v)
			}
		}
	}

	for i := 0; i < 20; i++ {
		put(i)
	}

	leader, ok := c.Leader()
	if !ok {
		t.Fatal("no leader")
	}
	crashWithMemoryLoss(t, c, leader, dataDir)
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	checkAll("after leader crash")

	for i := 20; i < 40; i++ {
		put(i)
	}

	leader, _ = c.Leader()
	var backup wire.NodeID
	for _, id := range c.Running() {
		if id != leader {
			backup = id
			break
		}
	}
	crashWithMemoryLoss(t, c, backup, dataDir)
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 50; i++ {
		put(i)
	}
	checkAll("after backup crash")
}

// flakyWAL wraps a File store and fails either Flush (the persister
// goroutine's path) or PutAccepted (the event-loop inline path) after a
// set number of successes.
type flakyWAL struct {
	*storage.File
	mu         sync.Mutex
	okFlushes  int
	okAccepts  int
	failFlush  bool
	failAccept bool
}

var errInjected = errors.New("injected storage failure")

func (f *flakyWAL) Flush() error {
	if f.failFlush {
		f.mu.Lock()
		f.okFlushes--
		out := f.okFlushes < 0
		f.mu.Unlock()
		if out {
			return errInjected
		}
	}
	return f.File.Flush()
}

func (f *flakyWAL) PutAccepted(entries []wire.Entry, max wire.Ballot) error {
	if f.failAccept {
		f.mu.Lock()
		f.okAccepts--
		out := f.okAccepts < 0
		f.mu.Unlock()
		if out {
			return errInjected
		}
	}
	return f.File.PutAccepted(entries, max)
}

// TestPersistFailureFailStops: a replica whose storage starts failing —
// whether the failure surfaces in the persister goroutine's Flush or in
// an inline mutation on the event loop — must fail-stop, and the
// remaining quorum must keep serving.
func TestPersistFailureFailStops(t *testing.T) {
	for _, tc := range []struct {
		name      string
		nopersist bool
		mk        func(f *storage.File) *flakyWAL
	}{
		{"persister-flush", false, func(f *storage.File) *flakyWAL {
			return &flakyWAL{File: f, failFlush: true, okFlushes: 5}
		}},
		{"loop-inline", true, func(f *storage.File) *flakyWAL {
			return &flakyWAL{File: f, failAccept: true, okAccepts: 5}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dataDir := t.TempDir()
			flakyID := wire.NodeID(2)
			f, err := storage.OpenFile(filepath.Join(dataDir, "flaky.wal"))
			if err != nil {
				t.Fatal(err)
			}
			c := newTestCluster(t, Config{
				Service:   service.KVFactory,
				DataDir:   dataDir,
				NoPersist: tc.nopersist,
				Stores:    map[wire.NodeID]storage.Store{flakyID: tc.mk(f)},
			})
			if _, err := c.WaitForLeader(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			cli, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()

			// Push writes until the injected failure trips; the cluster
			// must keep acking them on the surviving quorum.
			for i := 0; i < 40; i++ {
				if _, err := cli.Write(service.KVPut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
					t.Fatalf("write %d failed after storage fault: %v", i, err)
				}
			}

			rep, ok := c.Replica(flakyID)
			if !ok {
				t.Fatal("flaky replica missing from cluster")
			}
			deadline := time.Now().Add(5 * time.Second)
			for rep.Inspect(func(*core.Replica) {}) {
				if time.Now().After(deadline) {
					t.Fatal("replica with failing storage did not fail-stop")
				}
				time.Sleep(2 * time.Millisecond)
			}

			// The surviving quorum still serves.
			if _, err := cli.Write(service.KVPut("after-failstop", []byte("ok"))); err != nil {
				t.Fatalf("cluster stopped serving after one replica fail-stopped: %v", err)
			}
		})
	}
}
