package cluster

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"gridrep/internal/metrics"
)

// TestMetricsConcurrentReaders hammers every cross-goroutine observation
// surface — Stats, Health, registry Snapshot, and the Prometheus
// renderer — from concurrent readers while a 3-replica cluster commits
// writes. Run under -race (the race CI tier does) this is the proof that
// the metrics migration left no unsynchronized reads of event-loop
// state.
func TestMetricsConcurrentReaders(t *testing.T) {
	c := newTestCluster(t, Config{})
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range c.IDs() {
		rep, ok := c.Replica(id)
		if !ok {
			t.Fatalf("replica %v missing", id)
		}
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = rep.Stats()
					_ = rep.Health()
					_ = rep.Metrics().Snapshot()
					_ = rep.Metrics().WritePrometheus(io.Discard)
				}
			}()
		}
	}

	for i := 0; i < 200; i++ {
		if _, err := cli.Write([]byte("op")); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("write %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// The load must be visible through the new surfaces: the leader
	// committed waves, mirrored its role, and filled the commit-latency
	// histogram.
	lead, ok := c.Leader()
	if !ok {
		t.Fatal("no leader after load")
	}
	rep, _ := c.Replica(lead)
	if s := rep.Stats(); s.WavesCommitted == 0 {
		t.Fatalf("leader stats show no committed waves: %+v", s)
	}
	h := rep.Health()
	if !h.Leading || h.CommitIndex == 0 {
		t.Fatalf("leader health = %+v", h)
	}
	snap := rep.Metrics().Snapshot()
	m, ok := metrics.Find(snap, "gridrep_commit_latency_seconds")
	if !ok || m.Hist == nil || m.Hist.Count == 0 {
		t.Fatalf("commit latency histogram empty: %+v", m)
	}
	var sb strings.Builder
	if err := rep.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gridrep_commit_latency_seconds_count") {
		t.Fatal("prometheus output missing commit latency histogram")
	}
}
