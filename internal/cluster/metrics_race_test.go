package cluster

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"gridrep/internal/metrics"
)

// TestMetricsConcurrentReaders hammers every cross-goroutine observation
// surface — Stats, Health, registry Snapshot, and the Prometheus
// renderer — from concurrent readers while a 3-replica cluster commits
// writes. Run under -race (the race CI tier does) this is the proof that
// the metrics migration left no unsynchronized reads of event-loop
// state.
func TestMetricsConcurrentReaders(t *testing.T) {
	c := newTestCluster(t, Config{})
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range c.IDs() {
		rep, ok := c.Replica(id)
		if !ok {
			t.Fatalf("replica %v missing", id)
		}
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = rep.Stats()
					_ = rep.Health()
					_ = rep.Metrics().Snapshot()
					_ = rep.Metrics().WritePrometheus(io.Discard)
					// A breath between scrape rounds: the racing reads
					// only need to overlap the commits, not saturate the
					// scheduler. Nine hard-spinning scrapers starve the
					// event loops on a small host until each write takes
					// seconds and this one test blows the package's
					// default -timeout (observed at 647s while the rest
					// of the package summed to ~3s; worse under -race,
					// where the instrumented scrape itself is the spin).
					time.Sleep(time.Millisecond)
				}
			}()
		}
	}

	for i := 0; i < 200; i++ {
		if _, err := cli.Write([]byte("op")); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("write %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// The load must be visible through the new surfaces: the leader
	// committed waves, mirrored its role, and filled the commit-latency
	// histogram. On a starved host the spinners above keep leadership
	// churning for the whole run, so poll for the post-load leader
	// rather than sampling one instant, and read the wave/latency
	// surfaces from the replica that actually did the committing (the
	// final leader may have been elected after the load drained).
	lead, err := c.WaitForLeader(10 * time.Second)
	if err != nil {
		t.Fatalf("no leader after load: %v", err)
	}
	leadRep, _ := c.Replica(lead)
	h := leadRep.Health()
	if !h.Leading || h.CommitIndex == 0 {
		t.Fatalf("leader health = %+v", h)
	}
	rep := leadRep
	var maxWaves uint64
	for _, id := range c.IDs() {
		r, ok := c.Replica(id)
		if !ok {
			continue
		}
		if s := r.Stats(); s.WavesCommitted > maxWaves {
			rep, maxWaves = r, s.WavesCommitted
		}
	}
	if maxWaves == 0 {
		t.Fatal("no replica stats show committed waves")
	}
	snap := rep.Metrics().Snapshot()
	m, ok := metrics.Find(snap, "gridrep_commit_latency_seconds")
	if !ok || m.Hist == nil || m.Hist.Count == 0 {
		t.Fatalf("commit latency histogram empty: %+v", m)
	}
	var sb strings.Builder
	if err := rep.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gridrep_commit_latency_seconds_count") {
		t.Fatal("prometheus output missing commit latency histogram")
	}
}
