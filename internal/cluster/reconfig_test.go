package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gridrep/internal/core"
	"gridrep/internal/metrics"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

// counter reads one metric from a replica's registry.
func counter(t *testing.T, rep *core.Replica, name string) int64 {
	t.Helper()
	m, ok := metrics.Find(rep.Metrics().Snapshot(), name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return m.Value
}

// waitPruned blocks until the leader has pruned its WAL above zero, which
// requires every member's applied watermark to have gossiped around.
func waitPruned(t *testing.T, c *Cluster, timeout time.Duration) uint64 {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if leader, ok := c.Leader(); ok {
			if rep, ok := c.Replica(leader); ok {
				if h := rep.Health(); h.PrunedIndex > 0 {
					return h.PrunedIndex
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("WAL never pruned: watermark gossip or prune driver broken")
	return 0
}

// TestOnlineJoinSnapshotCatchUp is the reconfiguration happy path
// (DESIGN.md §12): a cluster under load snapshots and prunes its WAL,
// then a brand-new replica joins online — it must catch up through a
// streamed snapshot (the pruned prefix cannot be replayed), be promoted
// to voter by a committed configuration entry, and serve as a full
// member afterwards. No acked write may be lost along the way.
func TestOnlineJoinSnapshotCatchUp(t *testing.T) {
	c := newTestCluster(t, Config{
		Service:       service.KVFactory,
		SnapshotEvery: 32,
		PruneKeep:     8,
	})
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if _, err := cli.Write(service.KVPut(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i)))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	pruned := waitPruned(t, c, 10*time.Second)
	t.Logf("leader pruned WAL through instance %d", pruned)

	joiner := wire.NodeID(3)
	start := time.Now()
	if err := c.AddReplica(joiner); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForVoter(joiner, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Logf("join to voter promotion took %v", time.Since(start))

	rep, ok := c.Replica(joiner)
	if !ok {
		t.Fatal("joiner not running")
	}
	if got := counter(t, rep, "gridrep_catchup_installs_total"); got < 1 {
		t.Fatalf("joiner installed %d snapshots; want >=1 (caught up by replay despite pruned WAL?)", got)
	}
	if got := counter(t, rep, "gridrep_catchup_chunks_received_total"); got < 1 {
		t.Fatalf("joiner received %d snapshot chunks; want >=1", got)
	}

	// The committed membership must list the joiner on the leader.
	leader, _ := c.Leader()
	lrep, _ := c.Replica(leader)
	h := lrep.Health()
	found := false
	for _, m := range h.Members {
		if m == joiner {
			found = true
		}
	}
	if !found {
		t.Fatalf("leader membership %v does not list promoted joiner", h.Members)
	}

	// Every acked write survives, and the grown cluster keeps serving.
	for i := 0; i < n; i += 17 {
		res, err := cli.Read(service.KVGet(fmt.Sprintf("k%03d", i)))
		if err != nil {
			t.Fatalf("read k%03d: %v", i, err)
		}
		if v, ok := service.KVReply(res); !ok || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("k%03d = %q after join", i, v)
		}
	}
	if _, err := cli.Write(service.KVPut("post-join", []byte("ok"))); err != nil {
		t.Fatalf("write after join: %v", err)
	}
}

// TestRemoveReplicaShrinksQuorum removes a backup through the consensus
// path and checks the survivors keep serving with the smaller quorum.
func TestRemoveReplicaShrinksQuorum(t *testing.T) {
	c := newTestCluster(t, Config{Service: service.KVFactory})
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVPut("pre", []byte("1"))); err != nil {
		t.Fatal(err)
	}

	leader, _ := c.Leader()
	var victim wire.NodeID
	for _, id := range c.Running() {
		if id != leader {
			victim = id
			break
		}
	}
	if err := c.RemoveReplica(victim); err != nil {
		t.Fatalf("remove %v: %v", victim, err)
	}
	lrep, _ := c.Replica(leader)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var voters []wire.NodeID
		lrep.Inspect(func(r *core.Replica) { voters = r.Voters() })
		if len(voters) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("removal never committed; voters = %v", voters)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The shrunk cluster serves with the removed node ignored entirely.
	c.Crash(victim)
	if _, err := cli.Write(service.KVPut("post-remove", []byte("2"))); err != nil {
		t.Fatalf("write after removal: %v", err)
	}
}

// TestReconfigureRefusesUnsafeChanges exercises the leader's guard
// rails: promoting an unknown learner, removing yourself, and proposing
// through a non-leader must all fail fast with typed errors.
func TestReconfigureRefusesUnsafeChanges(t *testing.T) {
	c := newTestCluster(t, Config{Service: service.KVFactory})
	leader, err := c.WaitForLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lrep, _ := c.Replica(leader)

	if err := lrep.Reconfigure(wire.ConfigAddVoter, 9, ""); !errors.Is(err, core.ErrUnsafeChange) {
		t.Fatalf("promoting unknown learner: err = %v, want ErrUnsafeChange", err)
	}
	if err := lrep.Reconfigure(wire.ConfigRemove, leader, ""); !errors.Is(err, core.ErrUnsafeChange) {
		t.Fatalf("self-removal: err = %v, want ErrUnsafeChange", err)
	}
	for _, id := range c.Running() {
		if id == leader {
			continue
		}
		rep, _ := c.Replica(id)
		if err := rep.Reconfigure(wire.ConfigRemove, leader, ""); !errors.Is(err, core.ErrNotLeader) {
			t.Fatalf("proposal via backup: err = %v, want ErrNotLeader", err)
		}
		break
	}
}

// TestChaosCrashRejoinViaSnapshot is the crash-restart chaos scenario
// with snapshots and pruning in play: a WAL-backed replica dies losing
// its disk mid-load, the survivors keep committing and prune their logs,
// and the replacement (same ID, empty WAL) must come back through a
// streamed snapshot — not a full log replay, which is impossible — with
// zero acked writes lost. The catch-up time is measured and logged.
func TestChaosCrashRejoinViaSnapshot(t *testing.T) {
	dataDir := t.TempDir()
	c := newTestCluster(t, Config{
		Service:       service.KVFactory,
		DataDir:       dataDir,
		SyncPolicy:    storage.SyncPolicyBatch,
		SnapshotEvery: 16,
		PruneKeep:     4,
	})
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	put := func(i int) {
		if _, err := cli.Write(service.KVPut(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i)))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 120; i++ {
		put(i)
	}

	// Kill a backup and destroy its disk: the replacement has nothing.
	leader, _ := c.Leader()
	var victim wire.NodeID
	for _, id := range c.Running() {
		if id != leader {
			victim = id
			break
		}
	}
	c.Crash(victim)
	walPath := filepath.Join(dataDir, fmt.Sprintf("replica-%d.wal", victim))
	if err := os.Remove(walPath); err != nil {
		t.Fatal(err)
	}

	// Load continues on the surviving quorum; the survivors prune their
	// WALs up to the dead node's last gossiped watermark.
	for i := 120; i < 260; i++ {
		put(i)
	}
	pruned := waitPruned(t, c, 10*time.Second)
	t.Logf("survivors pruned WAL through instance %d while %v was down", pruned, victim)

	// Replacement: same ID, fresh empty WAL. Its HaveChosen=0 sits below
	// the peers' pruned prefix, so catch-up must go through a snapshot.
	fresh, err := storage.OpenFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	c.SetStore(victim, fresh)
	start := time.Now()
	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}

	rep, _ := c.Replica(victim)
	var target uint64
	lrep, _ := c.Replica(leader)
	target = lrep.Health().CommitIndex
	deadline := time.Now().Add(20 * time.Second)
	for rep.Health().Applied < target {
		if time.Now().After(deadline) {
			t.Fatalf("replacement stuck at applied=%d, want >= %d", rep.Health().Applied, target)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Logf("replacement caught up to instance %d in %v", target, time.Since(start))

	if got := counter(t, rep, "gridrep_catchup_installs_total"); got < 1 {
		t.Fatalf("replacement installed %d snapshots; want >=1 (full replay should be impossible past the pruned prefix)", got)
	}
	if h := rep.Health(); h.SnapshotIndex == 0 {
		t.Fatal("replacement reports no snapshot index after snapshot install")
	}

	// Zero lost acked writes, including those committed while down.
	for i := 0; i < 260; i += 13 {
		res, err := cli.Read(service.KVGet(fmt.Sprintf("k%03d", i)))
		if err != nil {
			t.Fatalf("read k%03d: %v", i, err)
		}
		if v, ok := service.KVReply(res); !ok || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("k%03d = %q (acked write lost)", i, v)
		}
	}
}
