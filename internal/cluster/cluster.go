// Package cluster assembles an in-process replicated service deployment:
// n core.Replica instances and any number of clients on one chanx
// network whose latencies come from a netem profile. Integration tests,
// examples, and the benchmark harness all build on it.
package cluster

import (
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/core"
	"gridrep/internal/netem"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// Config parameterizes a cluster.
type Config struct {
	// N is the number of service replicas (default 3, the paper's
	// configuration: t=1).
	N int
	// Profile selects the network model (default netem.Loopback()).
	Profile netem.Profile
	// Seed drives the network model's randomness.
	Seed int64
	// Service creates each replica's service instance (default
	// service.NoopFactory).
	Service service.Factory
	// Stores optionally provides stable storage per replica (default
	// in-memory); retained across Crash/Restart.
	Stores map[wire.NodeID]storage.Store
	// DataDir, when set and no store is supplied for a replica, gives
	// each replica a file-backed WAL at <DataDir>/replica-<id>.wal
	// instead of the in-memory default.
	DataDir string
	// SyncPolicy and SyncInterval configure DataDir-created WALs (see
	// storage.SyncPolicy; interval only applies to
	// storage.SyncPolicyInterval).
	SyncPolicy   storage.SyncPolicy
	SyncInterval time.Duration

	// HeartbeatInterval, ElectionTimeout, RetryTimeout override the
	// replica timing; zero values derive sensible defaults from the
	// profile's MaxOneWay.
	HeartbeatInterval time.Duration
	ElectionTimeout   time.Duration
	RetryTimeout      time.Duration

	// ClientRetryEvery and ClientDeadline configure clients.
	ClientRetryEvery time.Duration
	ClientDeadline   time.Duration

	// Logger receives replica role transitions (nil = quiet).
	Logger *log.Logger

	// Tracer, if set, observes every delivered message from the moment
	// the network starts (used for space-time diagrams).
	Tracer func(time.Time, *wire.Envelope)

	// PipelineDepth forwards the core speculative-pipelining bound: how
	// many accept waves the leader may keep in flight (default 1, the
	// paper's serial protocol).
	PipelineDepth int
	// NoBatch forwards the core ablation knob: one request per accept
	// wave.
	NoBatch bool
	// NoPersist forwards the core durability-pipeline ablation knob:
	// file-backed stores write and fsync inline on the event loop, the
	// pre-group-commit behavior.
	NoPersist bool
	// StateMode forwards the §3.3 state-transfer mode to every replica.
	StateMode core.StateMode
	// SnapshotEvery and PruneKeep forward the core snapshot/prune
	// cadence (reconfiguration tests shrink them to exercise snapshot
	// catch-up quickly).
	SnapshotEvery uint64
	PruneKeep     uint64
}

func (c *Config) fillDefaults() {
	if c.N == 0 {
		c.N = 3
	}
	if c.Profile.Configure == nil {
		c.Profile = netem.Loopback()
	}
	if c.Service == nil {
		c.Service = service.NoopFactory
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
		if hb := 2 * c.Profile.MaxOneWay; hb > c.HeartbeatInterval {
			c.HeartbeatInterval = hb
		}
	}
	if c.ElectionTimeout == 0 {
		c.ElectionTimeout = 8 * c.HeartbeatInterval
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 4 * c.HeartbeatInterval
		if rt := 6 * c.Profile.MaxOneWay; rt > c.RetryTimeout {
			c.RetryTimeout = rt
		}
	}
	if c.Stores == nil {
		c.Stores = make(map[wire.NodeID]storage.Store)
	}
}

// Cluster is a running deployment. All methods are safe for concurrent
// use; the exported Replicas map must only be read directly when no
// failure injection runs concurrently.
type Cluster struct {
	cfg      Config
	Net      *transport.Network
	Replicas map[wire.NodeID]*core.Replica
	ids      []wire.NodeID

	mu      sync.Mutex
	nextCli uint32
	joiners map[wire.NodeID]bool // replicas added via AddReplica
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	cfg.fillDefaults()
	net := transport.NewNetwork(cfg.Profile.NewModel(cfg.Seed))
	net.Tracer = cfg.Tracer
	c := &Cluster{
		cfg:      cfg,
		Net:      net,
		Replicas: make(map[wire.NodeID]*core.Replica),
		joiners:  make(map[wire.NodeID]bool),
	}
	for i := 0; i < cfg.N; i++ {
		c.ids = append(c.ids, wire.NodeID(i))
	}
	for _, id := range c.ids {
		if err := c.startReplica(id); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

func (c *Cluster) startReplica(id wire.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.cfg.Stores[id]
	if !ok {
		if c.cfg.DataDir != "" {
			fs, err := storage.OpenFile(filepath.Join(c.cfg.DataDir, fmt.Sprintf("replica-%d.wal", id)))
			if err != nil {
				return err
			}
			fs.SetPolicy(c.cfg.SyncPolicy, c.cfg.SyncInterval)
			st = fs
		} else {
			st = storage.NewMem()
		}
		c.cfg.Stores[id] = st
	}
	ep, err := c.Net.Endpoint(id)
	if err != nil {
		return err
	}
	rep, err := core.New(core.Config{
		ID:                id,
		Peers:             append([]wire.NodeID{}, c.ids...),
		Service:           c.cfg.Service(),
		Store:             st,
		Transport:         ep,
		HeartbeatInterval: c.cfg.HeartbeatInterval,
		ElectionTimeout:   c.cfg.ElectionTimeout,
		RetryTimeout:      c.cfg.RetryTimeout,
		PipelineDepth:     c.cfg.PipelineDepth,
		NoBatch:           c.cfg.NoBatch,
		NoPersist:         c.cfg.NoPersist,
		StateMode:         c.cfg.StateMode,
		SnapshotEvery:     c.cfg.SnapshotEvery,
		PruneKeep:         c.cfg.PruneKeep,
		Join:              c.joiners[id],
		Logger:            c.cfg.Logger,
	})
	if err != nil {
		return err
	}
	c.Replicas[id] = rep
	rep.Start()
	return nil
}

// IDs returns the replica IDs.
func (c *Cluster) IDs() []wire.NodeID { return append([]wire.NodeID{}, c.ids...) }

// NewClient attaches a fresh client to the cluster.
func (c *Cluster) NewClient() (*client.Client, error) {
	c.mu.Lock()
	c.nextCli++
	id := c.nextCli
	c.mu.Unlock()
	ep, err := c.Net.Endpoint(wire.ClientIDBase + wire.NodeID(id))
	if err != nil {
		return nil, err
	}
	return client.New(client.Config{
		Transport:  ep,
		Replicas:   c.IDs(),
		RetryEvery: c.cfg.ClientRetryEvery,
		Deadline:   c.cfg.ClientDeadline,
	}), nil
}

// Replica returns the running replica with the given ID, if any.
func (c *Cluster) Replica(id wire.NodeID) (*core.Replica, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, ok := c.Replicas[id]
	return rep, ok
}

// Running returns the IDs of currently running replicas.
func (c *Cluster) Running() []wire.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []wire.NodeID
	for _, id := range c.ids {
		if _, ok := c.Replicas[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Leader returns the currently active leader, if any. A partitioned
// stale leader may still believe it leads (harmlessly — it can commit
// nothing); among several claimants the one with the highest ballot is
// the real leader.
func (c *Cluster) Leader() (wire.NodeID, bool) {
	var best wire.NodeID
	var bestBal wire.Ballot
	found := false
	for _, id := range c.Running() {
		rep, ok := c.Replica(id)
		if !ok {
			continue
		}
		var active bool
		var bal wire.Ballot
		rep.Inspect(func(r *core.Replica) {
			active = r.IsActiveLeader()
			bal = r.Ballot()
		})
		if active && (!found || bestBal.Less(bal)) {
			best, bestBal, found = id, bal, true
		}
	}
	return best, found
}

// WaitForLeader blocks until some replica is an active leader.
func (c *Cluster) WaitForLeader(timeout time.Duration) (wire.NodeID, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if id, ok := c.Leader(); ok {
			return id, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return 0, fmt.Errorf("cluster: no leader within %v", timeout)
}

// Crash stops a replica and drops all its traffic, modelling a crash
// failure (§3.1).
func (c *Cluster) Crash(id wire.NodeID) {
	c.mu.Lock()
	rep, ok := c.Replicas[id]
	delete(c.Replicas, id)
	c.mu.Unlock()
	if ok {
		rep.Stop()
	}
	c.Net.Model().SetDown(id, true)
}

// Restart recovers a crashed replica from its stable storage (§3.1:
// faulty processes can recover).
func (c *Cluster) Restart(id wire.NodeID) error {
	if _, running := c.Replica(id); running {
		return fmt.Errorf("cluster: replica %v already running", id)
	}
	c.Net.Model().SetDown(id, false)
	return c.startReplica(id)
}

// SetStore replaces a crashed replica's store before Restart. Crash
// tests use it to model memory loss faithfully: the retained Store object
// still holds staged (never-flushed) records in RAM, so a test reopens
// the WAL file fresh and swaps it in, keeping only what a real restart
// would replay from disk. The replica must not be running.
func (c *Cluster) SetStore(id wire.NodeID, st storage.Store) {
	c.mu.Lock()
	c.cfg.Stores[id] = st
	c.mu.Unlock()
}

// Store returns the stable storage currently assigned to a replica.
func (c *Cluster) Store(id wire.NodeID) (storage.Store, bool) {
	c.mu.Lock()
	st, ok := c.cfg.Stores[id]
	c.mu.Unlock()
	return st, ok
}

// AddReplica starts a brand-new replica that joins the running cluster
// online: it boots as a non-voting learner, announces itself with
// JoinReq, catches up (through snapshot streaming when the peers have
// pruned their WALs), and is promoted to voter by a committed
// configuration entry once caught up. Returns once the replica is
// running; use WaitForVoter to observe the promotion.
func (c *Cluster) AddReplica(id wire.NodeID) error {
	c.mu.Lock()
	for _, cur := range c.ids {
		if cur == id {
			c.mu.Unlock()
			return fmt.Errorf("cluster: replica %v already exists", id)
		}
	}
	c.ids = append(c.ids, id)
	c.joiners[id] = true
	c.mu.Unlock()
	c.Net.Model().SetDown(id, false)
	return c.startReplica(id)
}

// RemoveReplica proposes removing a member through the current leader.
// The removal is in force once the configuration entry commits; the
// removed replica steps down to an idle non-member but keeps running
// until Crash/Close.
func (c *Cluster) RemoveReplica(id wire.NodeID) error {
	leader, ok := c.Leader()
	if !ok {
		return fmt.Errorf("cluster: no active leader to propose removal")
	}
	rep, ok := c.Replica(leader)
	if !ok {
		return fmt.Errorf("cluster: leader %v not running", leader)
	}
	return rep.Reconfigure(wire.ConfigRemove, id, "")
}

// WaitForVoter blocks until the leader's committed configuration lists
// id as a voter.
func (c *Cluster) WaitForVoter(id wire.NodeID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if leader, ok := c.Leader(); ok {
			if rep, ok := c.Replica(leader); ok {
				voter := false
				rep.Inspect(func(r *core.Replica) {
					for _, v := range r.Voters() {
						if v == id {
							voter = true
						}
					}
				})
				if voter {
					return nil
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("cluster: %v not promoted to voter within %v", id, timeout)
}

// SuspectLeader forces every replica's Ω module to distrust the current
// leader, triggering an election without a real crash — the §3.6 leader
// switch scenario.
func (c *Cluster) SuspectLeader() {
	leader, ok := c.Leader()
	if !ok {
		return
	}
	for _, id := range c.Running() {
		rep, ok := c.Replica(id)
		if !ok {
			continue
		}
		// Suspect(leader) at the leader itself maps to a claim
		// withdrawal, so one loop covers everyone.
		rep.Inspect(func(r *core.Replica) { r.Elector().Suspect(leader) })
	}
}

// Close stops every replica and the network.
func (c *Cluster) Close() {
	c.mu.Lock()
	reps := make([]*core.Replica, 0, len(c.Replicas))
	for _, rep := range c.Replicas {
		reps = append(reps, rep)
	}
	c.Replicas = map[wire.NodeID]*core.Replica{}
	c.mu.Unlock()
	for _, rep := range reps {
		rep.Stop()
	}
	c.Net.Close()
}
