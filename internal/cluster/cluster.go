// Package cluster assembles an in-process replicated service deployment:
// n core.Replica instances and any number of clients on one chanx
// network whose latencies come from a netem profile. Integration tests,
// examples, and the benchmark harness all build on it.
//
// With Config.Groups > 1 the cluster becomes a group manager (DESIGN.md
// §13): every node hosts one independent consensus group per group id —
// its own state machine, Ω elector, and WAL — multiplexed over the
// node's single network endpoint, with client requests routed by key
// hash and leadership spread so group g prefers replica g mod N.
package cluster

import (
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/core"
	"gridrep/internal/gateway"
	"gridrep/internal/metrics"
	"gridrep/internal/netem"
	"gridrep/internal/service"
	"gridrep/internal/shard"
	"gridrep/internal/storage"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// Config parameterizes a cluster.
type Config struct {
	// N is the number of service replicas (default 3, the paper's
	// configuration: t=1).
	N int
	// Groups is the number of independent consensus groups hosted by
	// every node (default 1 — the single-group deployment, whose boot
	// path, wire format, and metric names are exactly the pre-sharding
	// ones). See DESIGN.md §13.
	Groups int
	// Profile selects the network model (default netem.Loopback()).
	Profile netem.Profile
	// Seed drives the network model's randomness.
	Seed int64
	// Service creates each replica's service instance (default
	// service.NoopFactory). With Groups > 1 every group gets its own
	// instance; the service should implement service.Sharder if routing
	// must follow application keys.
	Service service.Factory
	// Stores optionally provides stable storage per replica (default
	// in-memory); retained across Crash/Restart. With Groups > 1 this
	// map covers group 0 only; other groups use DataDir-derived WALs or
	// in-memory stores (see GroupStore).
	Stores map[wire.NodeID]storage.Store
	// DataDir, when set and no store is supplied for a replica, gives
	// each replica a file-backed WAL at <DataDir>/replica-<id>.wal
	// instead of the in-memory default. Groups beyond 0 nest under
	// <DataDir>/group-<g>/.
	DataDir string
	// SyncPolicy and SyncInterval configure DataDir-created WALs (see
	// storage.SyncPolicy; interval only applies to
	// storage.SyncPolicyInterval).
	SyncPolicy   storage.SyncPolicy
	SyncInterval time.Duration

	// HeartbeatInterval, ElectionTimeout, RetryTimeout override the
	// replica timing; zero values derive sensible defaults from the
	// profile's MaxOneWay.
	HeartbeatInterval time.Duration
	ElectionTimeout   time.Duration
	RetryTimeout      time.Duration

	// ClientRetryEvery and ClientDeadline configure clients.
	ClientRetryEvery time.Duration
	ClientDeadline   time.Duration

	// Logger receives replica role transitions (nil = quiet).
	Logger *log.Logger

	// Tracer, if set, observes every delivered message from the moment
	// the network starts (used for space-time diagrams).
	Tracer func(time.Time, *wire.Envelope)

	// PipelineDepth forwards the core speculative-pipelining bound: how
	// many accept waves the leader may keep in flight. Zero adopts the
	// profile's tuning hint when it has one (long-haul profiles ask for
	// a deep pipeline), else the core default 1, the paper's serial
	// protocol.
	PipelineDepth int
	// CommitFlushDelay forwards the core commit-flush window. Zero
	// adopts the profile's tuning hint when it has one (long-haul
	// profiles widen it to amortize commit broadcasts), else the core
	// default.
	CommitFlushDelay time.Duration
	// RTTPlacement forwards the core RTT-aware leader placement knob
	// (DESIGN.md §16): replicas gossip their aggregate peer RTT and Ω
	// moves leadership to the replica closest to the rest of the
	// cluster, regardless of boot order.
	RTTPlacement bool
	// NearReads makes every client stamp its reads with the replica the
	// transport reports the lowest RTT to, which then serves the read
	// from its local state after a voter-quorum confirm round (DESIGN.md
	// §16) — cross-continent clients skip the hop to a far leader.
	NearReads bool
	// WireCompat forwards the core rolling-upgrade knob: replicas emit
	// only pre-§16 wire encodings (no Confirm.MaxAcc stamp, no
	// heartbeat cost gossip), so a mixed-version cluster keeps
	// decoding every message. Overrides RTTPlacement; near reads fall
	// back to the leader path while set.
	WireCompat bool
	// NoBatch forwards the core ablation knob: one request per accept
	// wave.
	NoBatch bool
	// NoPersist forwards the core durability-pipeline ablation knob:
	// file-backed stores write and fsync inline on the event loop, the
	// pre-group-commit behavior.
	NoPersist bool
	// StateMode forwards the §3.3 state-transfer mode to every replica.
	StateMode core.StateMode
	// ReadConcurrency forwards the core parallel-read worker count
	// (DESIGN.md §14): 0 sizes the pool to GOMAXPROCS (disabled on one
	// processor), negative disables it, positive forces that many
	// workers even on a single processor (tests use this).
	ReadConcurrency int
	// SnapshotEvery and PruneKeep forward the core snapshot/prune
	// cadence (reconfiguration tests shrink them to exercise snapshot
	// catch-up quickly).
	SnapshotEvery uint64
	PruneKeep     uint64
	// Gateway, when non-nil, wraps every node's endpoint in the
	// client-facing edge (DESIGN.md §15): admission control, weighted
	// fair queueing, typed overload sheds, per-session dedup. Nil keeps
	// the exact pre-gateway assembly.
	Gateway *gateway.Config
}

func (c *Config) fillDefaults() {
	if c.N == 0 {
		c.N = 3
	}
	if c.Groups <= 0 {
		c.Groups = 1
	}
	if c.Profile.Configure == nil {
		c.Profile = netem.Loopback()
	}
	if c.Service == nil {
		c.Service = service.NoopFactory
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
		if hb := 2 * c.Profile.MaxOneWay; hb > c.HeartbeatInterval {
			c.HeartbeatInterval = hb
		}
	}
	if c.ElectionTimeout == 0 {
		c.ElectionTimeout = 8 * c.HeartbeatInterval
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 4 * c.HeartbeatInterval
		if rt := 6 * c.Profile.MaxOneWay; rt > c.RetryTimeout {
			c.RetryTimeout = rt
		}
	}
	if c.PipelineDepth == 0 && c.Profile.PipelineDepth > 0 {
		c.PipelineDepth = c.Profile.PipelineDepth
	}
	if c.CommitFlushDelay == 0 {
		c.CommitFlushDelay = c.Profile.CommitFlushDelay
	}
	if c.Stores == nil {
		c.Stores = make(map[wire.NodeID]storage.Store)
	}
}

// gsKey identifies one (node, group) replica slot.
type gsKey struct {
	id wire.NodeID
	g  int
}

// Cluster is a running deployment. All methods are safe for concurrent
// use; the exported Replicas map must only be read directly when no
// failure injection runs concurrently.
type Cluster struct {
	cfg      Config
	Net      *transport.Network
	Replicas map[wire.NodeID]*core.Replica // group 0 — the pre-sharding view
	ids      []wire.NodeID

	mu      sync.Mutex
	nextCli uint32
	joiners map[wire.NodeID]bool                // replicas added via AddReplica
	greps   map[gsKey]*core.Replica             // groups beyond 0
	gstores map[gsKey]storage.Store             // groups beyond 0
	muxes   map[wire.NodeID]*transport.GroupMux // sharded nodes only
	regs    map[wire.NodeID]*metrics.Registry   // shared per-node registry (sharded)
	gws     map[wire.NodeID]*gateway.Gateway    // per-node edge (Config.Gateway set)
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	cfg.fillDefaults()
	net := transport.NewNetwork(cfg.Profile.NewModel(cfg.Seed))
	net.SetTracer(cfg.Tracer)
	c := &Cluster{
		cfg:      cfg,
		Net:      net,
		Replicas: make(map[wire.NodeID]*core.Replica),
		joiners:  make(map[wire.NodeID]bool),
		greps:    make(map[gsKey]*core.Replica),
		gstores:  make(map[gsKey]storage.Store),
		muxes:    make(map[wire.NodeID]*transport.GroupMux),
		regs:     make(map[wire.NodeID]*metrics.Registry),
		gws:      make(map[wire.NodeID]*gateway.Gateway),
	}
	for i := 0; i < cfg.N; i++ {
		c.ids = append(c.ids, wire.NodeID(i))
	}
	for _, id := range c.ids {
		if err := c.startReplica(id); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Groups returns the per-node consensus group count.
func (c *Cluster) Groups() int { return c.cfg.Groups }

// store resolves (creating if necessary) the stable storage for one
// (node, group) slot. Caller holds c.mu.
func (c *Cluster) store(id wire.NodeID, g int) (storage.Store, error) {
	if g == 0 {
		st, ok := c.cfg.Stores[id]
		if !ok {
			var err error
			if st, err = c.newStore(id, g); err != nil {
				return nil, err
			}
			c.cfg.Stores[id] = st
		}
		return st, nil
	}
	k := gsKey{id, g}
	st, ok := c.gstores[k]
	if !ok {
		var err error
		if st, err = c.newStore(id, g); err != nil {
			return nil, err
		}
		c.gstores[k] = st
	}
	return st, nil
}

func (c *Cluster) newStore(id wire.NodeID, g int) (storage.Store, error) {
	if c.cfg.DataDir == "" {
		return storage.NewMem(), nil
	}
	path := GroupWALPath(c.cfg.DataDir, g, id)
	fs, err := storage.OpenFile(path)
	if err != nil {
		return nil, err
	}
	fs.SetPolicy(c.cfg.SyncPolicy, c.cfg.SyncInterval)
	return fs, nil
}

// GroupWALPath is the WAL layout shared by the in-process cluster and
// the TCP server: group 0 keeps the pre-sharding path (a `-groups 1`
// data dir is byte-for-byte a single-group one), and each further group
// nests in its own subdirectory.
func GroupWALPath(dir string, g int, id wire.NodeID) string {
	if g == 0 {
		return filepath.Join(dir, fmt.Sprintf("replica-%d.wal", id))
	}
	return filepath.Join(dir, fmt.Sprintf("group-%d", g), fmt.Sprintf("replica-%d.wal", id))
}

// startReplica boots every consensus group of one node.
func (c *Cluster) startReplica(id wire.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ep, err := c.Net.Endpoint(id)
	if err != nil {
		return err
	}
	// The client-facing edge wraps the endpoint before the group
	// multiplexer, matching the TCP server assembly: endpoint → gateway
	// → (mux) → cores.
	var edge transport.Transport = ep
	if c.cfg.Gateway != nil {
		gw := gateway.Wrap(ep, *c.cfg.Gateway)
		c.gws[id] = gw
		edge = gw
	}
	groups := c.cfg.Groups
	var trFor func(g int) transport.Transport
	var regFor func(g int) *metrics.Registry
	if groups == 1 {
		// Single-group: the endpoint goes straight into the core — no
		// multiplexer, no shared registry. This is the exact pre-sharding
		// assembly, byte-for-byte on the wire and name-for-name in
		// metrics.
		trFor = func(int) transport.Transport { return edge }
		regFor = func(int) *metrics.Registry { return nil }
	} else {
		router := shard.NewRouter(groups, c.cfg.Service())
		mux := transport.NewGroupMux(edge, groups, router.Route)
		c.muxes[id] = mux
		reg := metrics.NewRegistry()
		c.regs[id] = reg
		trFor = func(g int) transport.Transport { return mux.Group(g) }
		regFor = func(g int) *metrics.Registry {
			if g == 0 {
				return reg
			}
			return reg.WithPrefix(fmt.Sprintf("group_%d_", g))
		}
	}
	for g := 0; g < groups; g++ {
		st, err := c.store(id, g)
		if err != nil {
			return err
		}
		var rank func(wire.NodeID) uint64
		if groups > 1 {
			rank = shard.LeaderRank(uint32(g), c.cfg.N)
		}
		rep, err := core.New(core.Config{
			ID:                id,
			Peers:             append([]wire.NodeID{}, c.ids...),
			Service:           c.cfg.Service(),
			Store:             st,
			Transport:         trFor(g),
			HeartbeatInterval: c.cfg.HeartbeatInterval,
			ElectionTimeout:   c.cfg.ElectionTimeout,
			RetryTimeout:      c.cfg.RetryTimeout,
			CommitFlushDelay:  c.cfg.CommitFlushDelay,
			PipelineDepth:     c.cfg.PipelineDepth,
			RTTPlacement:      c.cfg.RTTPlacement,
			WireCompat:        c.cfg.WireCompat,
			NoBatch:           c.cfg.NoBatch,
			NoPersist:         c.cfg.NoPersist,
			StateMode:         c.cfg.StateMode,
			ReadConcurrency:   c.cfg.ReadConcurrency,
			SnapshotEvery:     c.cfg.SnapshotEvery,
			PruneKeep:         c.cfg.PruneKeep,
			Join:              c.joiners[id],
			Metrics:           regFor(g),
			LeaderRank:        rank,
			Logger:            c.cfg.Logger,
		})
		if err != nil {
			return err
		}
		if g == 0 {
			c.Replicas[id] = rep
		} else {
			c.greps[gsKey{id, g}] = rep
		}
		rep.Start()
	}
	return nil
}

// IDs returns the replica IDs.
func (c *Cluster) IDs() []wire.NodeID { return append([]wire.NodeID{}, c.ids...) }

// NewClient attaches a fresh client to the cluster. Clients are
// group-unaware: requests are routed to consensus groups by the
// replicas' multiplexers.
func (c *Cluster) NewClient() (*client.Client, error) {
	c.mu.Lock()
	c.nextCli++
	id := c.nextCli
	c.mu.Unlock()
	ep, err := c.Net.Endpoint(wire.ClientIDBase + wire.NodeID(id))
	if err != nil {
		return nil, err
	}
	return client.New(client.Config{
		Transport:  ep,
		Replicas:   c.IDs(),
		RetryEvery: c.cfg.ClientRetryEvery,
		Deadline:   c.cfg.ClientDeadline,
		NearRead:   c.cfg.NearReads,
	}), nil
}

// NewSessionClient attaches a client for one logical session of a
// tenant. On the in-process network every session gets its own cheap
// endpoint — the session ID packs the tenant into the client NodeID
// exactly as the TCP ClientMux does, so replica-side gateways see the
// same tenant space either way.
func (c *Cluster) NewSessionClient(tenant uint8, n uint32) (*client.Client, error) {
	ep, err := c.Net.Endpoint(gateway.SessionID(tenant, n))
	if err != nil {
		return nil, err
	}
	return client.New(client.Config{
		Transport:  ep,
		Replicas:   c.IDs(),
		RetryEvery: c.cfg.ClientRetryEvery,
		Deadline:   c.cfg.ClientDeadline,
		NearRead:   c.cfg.NearReads,
	}), nil
}

// Gateway returns node id's client-facing edge, when one is running.
func (c *Cluster) Gateway(id wire.NodeID) (*gateway.Gateway, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gw, ok := c.gws[id]
	return gw, ok
}

// GatewayStats sums the edge counters across every running node — the
// cluster-wide view of admissions, sheds, and dedup hits.
func (c *Cluster) GatewayStats() gateway.Stats {
	c.mu.Lock()
	gws := make([]*gateway.Gateway, 0, len(c.gws))
	for _, gw := range c.gws {
		gws = append(gws, gw)
	}
	c.mu.Unlock()
	var sum gateway.Stats
	for _, gw := range gws {
		st := gw.Stats()
		sum.Admitted += st.Admitted
		sum.Queued += st.Queued
		sum.DedupHits += st.DedupHits
		sum.DupPassthrough += st.DupPassthrough
		sum.ShedThrottle += st.ShedThrottle
		sum.ShedQueueFull += st.ShedQueueFull
		sum.ShedQueueAged += st.ShedQueueAged
		sum.ExpiredInFlight += st.ExpiredInFlight
		sum.InFlight += st.InFlight
		sum.QueueDepth += st.QueueDepth
		sum.Sessions += st.Sessions
	}
	return sum
}

// Replica returns the running group-0 replica with the given ID, if any.
func (c *Cluster) Replica(id wire.NodeID) (*core.Replica, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, ok := c.Replicas[id]
	return rep, ok
}

// GroupReplica returns node id's replica for consensus group g, if
// running.
func (c *Cluster) GroupReplica(id wire.NodeID, g int) (*core.Replica, bool) {
	if g == 0 {
		return c.Replica(id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, ok := c.greps[gsKey{id, g}]
	return rep, ok
}

// GroupStore returns the stable storage assigned to node id's group g.
func (c *Cluster) GroupStore(id wire.NodeID, g int) (storage.Store, bool) {
	if g == 0 {
		return c.Store(id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.gstores[gsKey{id, g}]
	return st, ok
}

// NodeMetrics returns the node's process-wide registry when sharded
// (group 0 unprefixed, group g prefixed group_<g>_), or the group-0
// replica's own registry otherwise.
func (c *Cluster) NodeMetrics(id wire.NodeID) (*metrics.Registry, bool) {
	c.mu.Lock()
	if reg, ok := c.regs[id]; ok {
		c.mu.Unlock()
		return reg, true
	}
	c.mu.Unlock()
	rep, ok := c.Replica(id)
	if !ok {
		return nil, false
	}
	return rep.Metrics(), true
}

// GroupHealths reports every group's protocol position on one node, in
// group order — the in-process twin of the TCP server's /healthz array.
func (c *Cluster) GroupHealths(id wire.NodeID) []core.Health {
	out := make([]core.Health, 0, c.cfg.Groups)
	for g := 0; g < c.cfg.Groups; g++ {
		if rep, ok := c.GroupReplica(id, g); ok {
			out = append(out, rep.Health())
		}
	}
	return out
}

// Running returns the IDs of currently running replicas.
func (c *Cluster) Running() []wire.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []wire.NodeID
	for _, id := range c.ids {
		if _, ok := c.Replicas[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Leader returns the currently active leader of group 0, if any. A
// partitioned stale leader may still believe it leads (harmlessly — it
// can commit nothing); among several claimants the one with the highest
// ballot is the real leader.
func (c *Cluster) Leader() (wire.NodeID, bool) { return c.GroupLeader(0) }

// GroupLeader returns the currently active leader of group g, if any.
func (c *Cluster) GroupLeader(g int) (wire.NodeID, bool) {
	var best wire.NodeID
	var bestBal wire.Ballot
	found := false
	for _, id := range c.Running() {
		rep, ok := c.GroupReplica(id, g)
		if !ok {
			continue
		}
		var active bool
		var bal wire.Ballot
		rep.Inspect(func(r *core.Replica) {
			active = r.IsActiveLeader()
			bal = r.Ballot()
		})
		if active && (!found || bestBal.Less(bal)) {
			best, bestBal, found = id, bal, true
		}
	}
	return best, found
}

// WaitForLeader blocks until some replica is an active leader of
// group 0.
func (c *Cluster) WaitForLeader(timeout time.Duration) (wire.NodeID, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if id, ok := c.Leader(); ok {
			return id, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return 0, fmt.Errorf("cluster: no leader within %v", timeout)
}

// WaitForAllLeaders blocks until every consensus group has an active
// leader, returning the leader of each group in group order.
func (c *Cluster) WaitForAllLeaders(timeout time.Duration) ([]wire.NodeID, error) {
	deadline := time.Now().Add(timeout)
	leaders := make([]wire.NodeID, c.cfg.Groups)
	for g := 0; g < c.cfg.Groups; {
		id, ok := c.GroupLeader(g)
		if ok {
			leaders[g] = id
			g++
			continue
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("cluster: group %d has no leader within %v", g, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return leaders, nil
}

// Crash stops a node — every consensus group it hosts — and drops all
// its traffic, modelling a crash failure (§3.1).
func (c *Cluster) Crash(id wire.NodeID) {
	c.mu.Lock()
	reps := make([]*core.Replica, 0, c.cfg.Groups)
	if rep, ok := c.Replicas[id]; ok {
		reps = append(reps, rep)
		delete(c.Replicas, id)
	}
	for g := 1; g < c.cfg.Groups; g++ {
		if rep, ok := c.greps[gsKey{id, g}]; ok {
			reps = append(reps, rep)
			delete(c.greps, gsKey{id, g})
		}
	}
	mux := c.muxes[id]
	delete(c.muxes, id)
	delete(c.regs, id)
	delete(c.gws, id) // closed via rep.Stop (single-group) or mux.Close
	c.mu.Unlock()
	for _, rep := range reps {
		rep.Stop()
	}
	if mux != nil {
		mux.Close()
	}
	c.Net.Model().SetDown(id, true)
}

// Restart recovers a crashed node from its stable storage (§3.1: faulty
// processes can recover).
func (c *Cluster) Restart(id wire.NodeID) error {
	if _, running := c.Replica(id); running {
		return fmt.Errorf("cluster: replica %v already running", id)
	}
	c.Net.Model().SetDown(id, false)
	return c.startReplica(id)
}

// SetStore replaces a crashed replica's group-0 store before Restart.
// Crash tests use it to model memory loss faithfully: the retained Store
// object still holds staged (never-flushed) records in RAM, so a test
// reopens the WAL file fresh and swaps it in, keeping only what a real
// restart would replay from disk. The replica must not be running.
func (c *Cluster) SetStore(id wire.NodeID, st storage.Store) {
	c.mu.Lock()
	c.cfg.Stores[id] = st
	c.mu.Unlock()
}

// SetGroupStore is SetStore for an arbitrary consensus group.
func (c *Cluster) SetGroupStore(id wire.NodeID, g int, st storage.Store) {
	if g == 0 {
		c.SetStore(id, st)
		return
	}
	c.mu.Lock()
	c.gstores[gsKey{id, g}] = st
	c.mu.Unlock()
}

// Store returns the stable storage currently assigned to a replica
// (group 0).
func (c *Cluster) Store(id wire.NodeID) (storage.Store, bool) {
	c.mu.Lock()
	st, ok := c.cfg.Stores[id]
	c.mu.Unlock()
	return st, ok
}

// AddReplica starts a brand-new node that joins the running cluster
// online: every group boots as a non-voting learner, announces itself
// with JoinReq, catches up (through snapshot streaming when the peers
// have pruned their WALs), and is promoted to voter by a committed
// configuration entry once caught up. Returns once the node is running;
// use WaitForVoter to observe the (group 0) promotion.
func (c *Cluster) AddReplica(id wire.NodeID) error {
	c.mu.Lock()
	for _, cur := range c.ids {
		if cur == id {
			c.mu.Unlock()
			return fmt.Errorf("cluster: replica %v already exists", id)
		}
	}
	c.ids = append(c.ids, id)
	c.joiners[id] = true
	c.mu.Unlock()
	c.Net.Model().SetDown(id, false)
	return c.startReplica(id)
}

// RemoveReplica proposes removing a member through each group's current
// leader. The removal is in force per group once its configuration
// entry commits; the removed replica steps down to an idle non-member
// but keeps running until Crash/Close.
func (c *Cluster) RemoveReplica(id wire.NodeID) error {
	for g := 0; g < c.cfg.Groups; g++ {
		leader, ok := c.GroupLeader(g)
		if !ok {
			return fmt.Errorf("cluster: group %d has no active leader to propose removal", g)
		}
		rep, ok := c.GroupReplica(leader, g)
		if !ok {
			return fmt.Errorf("cluster: group %d leader %v not running", g, leader)
		}
		if err := rep.Reconfigure(wire.ConfigRemove, id, ""); err != nil {
			return err
		}
	}
	return nil
}

// WaitForVoter blocks until the (group 0) leader's committed
// configuration lists id as a voter.
func (c *Cluster) WaitForVoter(id wire.NodeID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if leader, ok := c.Leader(); ok {
			if rep, ok := c.Replica(leader); ok {
				voter := false
				rep.Inspect(func(r *core.Replica) {
					for _, v := range r.Voters() {
						if v == id {
							voter = true
						}
					}
				})
				if voter {
					return nil
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("cluster: %v not promoted to voter within %v", id, timeout)
}

// SuspectLeader forces every replica's Ω module to distrust the current
// group-0 leader, triggering an election without a real crash — the
// §3.6 leader switch scenario.
func (c *Cluster) SuspectLeader() { c.SuspectGroupLeader(0) }

// SuspectGroupLeader forces a leader switch in one consensus group.
func (c *Cluster) SuspectGroupLeader(g int) {
	leader, ok := c.GroupLeader(g)
	if !ok {
		return
	}
	for _, id := range c.Running() {
		rep, ok := c.GroupReplica(id, g)
		if !ok {
			continue
		}
		// Suspect(leader) at the leader itself maps to a claim
		// withdrawal, so one loop covers everyone.
		rep.Inspect(func(r *core.Replica) { r.Elector().Suspect(leader) })
	}
}

// Close stops every replica and the network.
func (c *Cluster) Close() {
	c.mu.Lock()
	reps := make([]*core.Replica, 0, len(c.Replicas)+len(c.greps))
	for _, rep := range c.Replicas {
		reps = append(reps, rep)
	}
	for _, rep := range c.greps {
		reps = append(reps, rep)
	}
	c.Replicas = map[wire.NodeID]*core.Replica{}
	c.greps = map[gsKey]*core.Replica{}
	muxes := make([]*transport.GroupMux, 0, len(c.muxes))
	for _, m := range c.muxes {
		muxes = append(muxes, m)
	}
	c.muxes = map[wire.NodeID]*transport.GroupMux{}
	c.gws = map[wire.NodeID]*gateway.Gateway{} // closed via Stop/mux.Close below
	c.mu.Unlock()
	for _, rep := range reps {
		rep.Stop()
	}
	for _, m := range muxes {
		m.Close()
	}
	c.Net.Close()
}
