package gridrep_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"gridrep"
	"gridrep/internal/gateway"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// startGatewayServer boots one WAL-backed TCP replica with the
// client-facing edge enabled (defaults).
func startGatewayServer(t *testing.T, dir string, id gridrep.NodeID, peers map[gridrep.NodeID]string) *gridrep.Server {
	t.Helper()
	srv, err := gridrep.ListenAndServe(gridrep.ServerOptions{
		ID:                id,
		Peers:             peers,
		Service:           gridrep.NewKV(),
		WALPath:           filepath.Join(dir, fmt.Sprintf("r%d.wal", id)),
		HeartbeatInterval: 10 * time.Millisecond,
		Gateway:           &gridrep.GatewayOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestTCPIdempotentRetryAcrossLeaderCrash is the satellite-3 acceptance
// scenario: a client retransmitting one request with a fixed (client,
// seq) identity across a leader crash — over real sockets, real WALs,
// and with the gateway's dedup window in front — must see the request
// applied exactly once, and no acked write may be lost.
//
// A raw transport endpoint (not the library client) controls the wire
// identity directly, so the test can replay the exact same sequence
// number as many times as it wants.
func TestTCPIdempotentRetryAcrossLeaderCrash(t *testing.T) {
	dir := t.TempDir()
	ids := []gridrep.NodeID{0, 1, 2}
	peers := reservePorts(t, ids)
	srvs := make(map[gridrep.NodeID]*gridrep.Server, len(ids))
	for _, id := range ids {
		srvs[id] = startGatewayServer(t, dir, id, peers)
	}
	t.Cleanup(func() {
		for _, s := range srvs {
			s.Close()
		}
	})

	// Session-addressed identity (tenant 3, session 42), exercising the
	// same ID space DialMux sessions live in.
	cid := gateway.SessionID(3, 42)
	ep := transport.DialTCP(cid, peers)
	defer ep.Close()

	send := func(seq uint64, op []byte) {
		for id := range peers {
			ep.Send(&wire.Envelope{To: id, Msg: &wire.RequestMsg{
				Req: wire.Request{Client: cid, Seq: seq, Kind: wire.KindWrite, Op: op},
			}})
		}
	}
	// await retransmits seq (same identity, same op) until a leader acks
	// it — the protocol's own recovery discipline for lost requests and
	// dead leaders.
	await := func(seq uint64, op []byte, within time.Duration) wire.Reply {
		t.Helper()
		deadline := time.Now().Add(within)
		resend := time.NewTicker(300 * time.Millisecond)
		defer resend.Stop()
		for {
			select {
			case env, ok := <-ep.Recv():
				if !ok {
					t.Fatal("client endpoint closed")
				}
				rm, isRep := env.Msg.(*wire.ReplyMsg)
				if !isRep || rm.Rep.Seq != seq {
					continue
				}
				switch rm.Rep.Status {
				case wire.StatusOK:
					return rm.Rep
				case wire.StatusNotLeader, wire.StatusOverload:
					continue // keep retransmitting
				default:
					t.Fatalf("seq %d: unexpected status %v (%s)", seq, rm.Rep.Status, rm.Rep.Err)
				}
			case <-resend.C:
				send(seq, op)
			}
			if time.Now().After(deadline) {
				t.Fatalf("seq %d never acked", seq)
			}
		}
	}

	add := gridrep.KVAdd("ctr", 1)

	// Phase 1 — acked, then crash, then replay. The increment is acked by
	// the first leader; after it dies, retransmitting the same seq must
	// be answered from the new leader's log-rebuilt reply cache, not
	// re-executed.
	send(1, add)
	await(1, add, 20*time.Second)
	leader1 := tcpLeader(t, srvs, 10*time.Second)
	srvs[leader1].Close()
	delete(srvs, leader1)
	tcpLeader(t, srvs, 20*time.Second) // survivors re-elect

	send(1, add)
	await(1, add, 20*time.Second)

	got := await(2, gridrep.KVGet("ctr"), 20*time.Second)
	if v, ok := gridrep.KVInt(got.Result); !ok || v != 1 {
		t.Fatalf("after acked replay, ctr = %v (parsed %v), want exactly 1", got.Result, v)
	}

	// Phase 2 — crash racing the commit. Restore quorum headroom by
	// restarting the first victim from its WAL, fire another increment,
	// and kill the current leader immediately: the request may or may not
	// have committed when the leader dies. Retransmitting the same seq
	// until acked must land it exactly once either way.
	srvs[leader1] = startGatewayServer(t, dir, leader1, peers)
	leader2 := tcpLeader(t, srvs, 20*time.Second)
	send(3, add)
	srvs[leader2].Close()
	delete(srvs, leader2)
	await(3, add, 30*time.Second)

	got = await(4, gridrep.KVGet("ctr"), 20*time.Second)
	if v, ok := gridrep.KVInt(got.Result); !ok || v != 2 {
		t.Fatalf("after mid-commit crash replay, ctr = %v (parsed %v), want exactly 2", got.Result, v)
	}
}
