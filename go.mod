module gridrep

go 1.22
