package gridrep_test

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"gridrep"
)

func startCluster(t *testing.T, opts gridrep.ClusterOptions) *gridrep.Cluster {
	t.Helper()
	c, err := gridrep.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPublicAPIQuickstart(t *testing.T) {
	c := startCluster(t, gridrep.ClusterOptions{
		Service: func() gridrep.Service { return gridrep.NewKV() },
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(gridrep.KVPut("greeting", []byte("hello"))); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Read(gridrep.KVGet("greeting"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := gridrep.KVReply(res); !ok || string(v) != "hello" {
		t.Fatalf("read = %q,%v", v, ok)
	}
}

func TestPublicAPITransactions(t *testing.T) {
	c := startCluster(t, gridrep.ClusterOptions{
		Service: func() gridrep.Service { return gridrep.NewKV() },
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(gridrep.KVAdd("alice", 100)); err != nil {
		t.Fatal(err)
	}
	tx := cli.Begin()
	if _, err := tx.Do(gridrep.KVAdd("alice", -40)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Do(gridrep.KVAdd("bob", 40)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, _ := cli.Read(gridrep.KVGet("bob"))
	if n, _ := gridrep.KVInt(res); n != 40 {
		t.Fatalf("bob = %d", n)
	}
}

func TestPublicAPIFailover(t *testing.T) {
	c := startCluster(t, gridrep.ClusterOptions{
		Service: func() gridrep.Service { return gridrep.NewKV() },
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(gridrep.KVPut("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	leader, ok := c.Leader()
	if !ok {
		t.Fatal("no leader")
	}
	c.Crash(leader)
	res, err := cli.Read(gridrep.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := gridrep.KVReply(res); string(v) != "v" {
		t.Fatalf("read after failover = %q", v)
	}
	if err := c.Restart(leader); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDurableCluster(t *testing.T) {
	dir := t.TempDir()
	c := startCluster(t, gridrep.ClusterOptions{
		Service: func() gridrep.Service { return gridrep.NewKV() },
		DataDir: dir,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(gridrep.KVPut("durable", []byte("yes"))); err != nil {
		t.Fatal(err)
	}
	// Crash and restart a backup: its WAL must bring it back.
	var backup gridrep.NodeID
	leader, _ := c.Leader()
	for i := gridrep.NodeID(0); i < 3; i++ {
		if i != leader {
			backup = i
			break
		}
	}
	c.Crash(backup)
	if err := c.Restart(backup); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Read(gridrep.KVGet("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := gridrep.KVReply(res); string(v) != "yes" {
		t.Fatalf("durable read = %q", v)
	}
}

func TestPublicAPIErrAborted(t *testing.T) {
	c := startCluster(t, gridrep.ClusterOptions{
		Service: func() gridrep.Service { return gridrep.NewKV() },
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	tx1 := cli.Begin()
	if _, err := tx1.Do(gridrep.KVPut("k", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	tx2 := cli.Begin()
	if _, err := tx2.Do(gridrep.KVPut("k", []byte("2"))); !errors.Is(err, gridrep.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPDeployment(t *testing.T) {
	// Three replica processes over real TCP on loopback, one client.
	// Reserve three ports first so every replica starts with the full
	// address book.
	peers := make(map[gridrep.NodeID]string, 3)
	for id := gridrep.NodeID(0); id < 3; id++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		peers[id] = ln.Addr().String()
		ln.Close()
	}
	for id := gridrep.NodeID(0); id < 3; id++ {
		srv, err := gridrep.ListenAndServe(gridrep.ServerOptions{
			ID:                id,
			Peers:             peers,
			Service:           gridrep.NewKV(),
			HeartbeatInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
	}
	cli, err := gridrep.Dial(gridrep.DialOptions{ID: 1, Replicas: peers, Deadline: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 5; i++ {
		if _, err := cli.Write(gridrep.KVPut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatalf("TCP write %d: %v", i, err)
		}
	}
	res, err := cli.Read(gridrep.KVGet("k3"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := gridrep.KVReply(res); string(v) != "v" {
		t.Fatalf("TCP read = %q", v)
	}
	tx := cli.Begin()
	if _, err := tx.Do(gridrep.KVPut("t", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
