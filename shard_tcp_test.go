package gridrep_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridrep"
	"gridrep/internal/service"
	"gridrep/internal/shard"
)

// startShardedServer boots one TCP replica hosting the given number of
// consensus groups, WAL-backed under dir/r<id>/.
func startShardedServer(t *testing.T, dir string, id gridrep.NodeID, peers map[gridrep.NodeID]string, groups int) *gridrep.Server {
	t.Helper()
	srv, err := gridrep.ListenAndServe(gridrep.ServerOptions{
		ID:                id,
		Peers:             peers,
		NewService:        func() gridrep.Service { return gridrep.NewKV() },
		Groups:            groups,
		WALPath:           filepath.Join(dir, fmt.Sprintf("r%d", id), "replica.wal"),
		HeartbeatInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// waitAllGroupLeaders blocks until every group has an activated leader
// among the given servers.
func waitAllGroupLeaders(t *testing.T, srvs map[gridrep.NodeID]*gridrep.Server, groups int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for g := 0; g < groups; g++ {
		for {
			found := false
			for _, s := range srvs {
				if s == nil {
					continue
				}
				if hs := s.GroupHealths(); g < len(hs) && hs[g].Leading {
					found = true
					break
				}
			}
			if found {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("group %d never elected a leader", g)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// groupLeaderTCP returns the server currently leading group g.
func groupLeaderTCP(t *testing.T, srvs map[gridrep.NodeID]*gridrep.Server, g int, timeout time.Duration) gridrep.NodeID {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for id, s := range srvs {
			if s == nil {
				continue
			}
			if hs := s.GroupHealths(); g < len(hs) && hs[g].Leading {
				return id
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no leader for group %d", g)
	return 0
}

// TestShardedLinearizabilityMatrix is the satellite-4 acceptance test:
// the same per-key ordering scenario runs at -groups 1 and -groups 4
// over real TCP and real WALs. One synchronous writer per key means an
// acked write is the key's latest committed version, so every read must
// return exactly the last acked value — before a leader crash, while
// the victim group re-elects (sibling groups keep committing), and
// after the crashed process restarts from its WAL family.
func TestShardedLinearizabilityMatrix(t *testing.T) {
	for _, groups := range []int{1, 4} {
		groups := groups
		t.Run(fmt.Sprintf("groups=%d", groups), func(t *testing.T) {
			runShardLinearizability(t, groups)
		})
	}
}

func runShardLinearizability(t *testing.T, groups int) {
	dir := t.TempDir()
	ids := []gridrep.NodeID{0, 1, 2}
	peers := reservePorts(t, ids)
	srvs := make(map[gridrep.NodeID]*gridrep.Server, len(ids))
	for _, id := range ids {
		srvs[id] = startShardedServer(t, dir, id, peers, groups)
	}
	t.Cleanup(func() {
		for _, s := range srvs {
			if s != nil {
				s.Close()
			}
		}
	})
	waitAllGroupLeaders(t, srvs, groups, 15*time.Second)

	cli, err := gridrep.Dial(gridrep.DialOptions{ID: 1, Replicas: peers, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// 16 keys; with 4 groups their hashes cover several groups. last
	// records the acked history tip per key.
	const nkeys = 16
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	last := make(map[string]string, nkeys)
	writeRound := func(round string) {
		for _, k := range keys {
			v := k + "#" + round
			if _, err := cli.Write(gridrep.KVPut(k, []byte(v))); err != nil {
				t.Fatalf("round %s put %s: %v", round, k, err)
			}
			last[k] = v
		}
	}
	checkAll := func(when string) {
		for _, k := range keys {
			rep, err := cli.Read(gridrep.KVGet(k))
			if err != nil {
				t.Fatalf("%s: get %s: %v", when, k, err)
			}
			v, ok := gridrep.KVReply(rep)
			if !ok || string(v) != last[k] {
				t.Fatalf("%s: %s = %q, want last acked %q", when, k, v, last[k])
			}
		}
	}

	writeRound("r0")
	checkAll("before crash")

	// Crash the process leading the victim group (group 1 when sharded:
	// with leadership spread that is a different process than group 0's
	// leader, so sibling groups lose at most a follower).
	victimGroup := 0
	if groups > 1 {
		victimGroup = 1
	}
	victim := groupLeaderTCP(t, srvs, victimGroup, 10*time.Second)
	srvs[victim].Close()
	srvs[victim] = nil

	// Sibling groups keep committing while the victim group re-elects:
	// write the keys of the surviving groups first, then the full round
	// (which blocks until the victim group's new leader activates).
	if groups > 1 {
		r := shard.NewRouter(groups, service.NewKV())
		for _, k := range keys {
			if r.GroupForOp(gridrep.KVPut(k, nil)) == uint32(victimGroup) {
				continue
			}
			v := k + "#survivor"
			if _, err := cli.Write(gridrep.KVPut(k, []byte(v))); err != nil {
				t.Fatalf("surviving-group put %s during failover: %v", k, err)
			}
			last[k] = v
		}
	}
	writeRound("r1")
	checkAll("after failover")

	// Restart the crashed process from its WAL family; the whole matrix
	// must still read the last acked values, and new writes commit.
	srvs[victim] = startShardedServer(t, dir, victim, peers, groups)
	waitAllGroupLeaders(t, srvs, groups, 15*time.Second)
	writeRound("r2")
	checkAll("after restart")
}

// TestTCPCrossGroupTxn: the typed cross-group refusal travels the real
// wire — a transaction touching two groups' keys fails with
// ErrCrossGroup, and a same-group transaction commits.
func TestTCPCrossGroupTxn(t *testing.T) {
	const groups = 4
	dir := t.TempDir()
	ids := []gridrep.NodeID{0, 1, 2}
	peers := reservePorts(t, ids)
	srvs := make(map[gridrep.NodeID]*gridrep.Server, len(ids))
	for _, id := range ids {
		srvs[id] = startShardedServer(t, dir, id, peers, groups)
	}
	t.Cleanup(func() {
		for _, s := range srvs {
			s.Close()
		}
	})
	waitAllGroupLeaders(t, srvs, groups, 15*time.Second)

	cli, err := gridrep.Dial(gridrep.DialOptions{ID: 1, Replicas: peers, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	r := shard.NewRouter(groups, service.NewKV())
	g0 := r.GroupForOp(gridrep.KVPut("key-000", nil))
	var same, cross string
	for i := 1; i < 1000 && (same == "" || cross == ""); i++ {
		k := fmt.Sprintf("key-%03d", i)
		if g := r.GroupForOp(gridrep.KVPut(k, nil)); g == g0 && same == "" {
			same = k
		} else if g != g0 && cross == "" {
			cross = k
		}
	}

	txn := cli.Begin()
	if _, err := txn.Do(gridrep.KVPut("key-000", []byte("a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Do(gridrep.KVPut(same, []byte("b"))); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	txn = cli.Begin()
	if _, err := txn.Do(gridrep.KVPut("key-000", []byte("a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Do(gridrep.KVPut(cross, []byte("c"))); !errors.Is(err, gridrep.ErrCrossGroup) {
		t.Fatalf("cross-group txn op: err = %v, want ErrCrossGroup", err)
	}
	_ = txn.Abort()
}

// TestDebugHandlerHealthzShapes: /healthz serves one Health object for a
// single-group server and an array of {"group": g, ...} objects for a
// sharded one; /metrics carries the per-group name prefixes.
func TestDebugHandlerHealthzShapes(t *testing.T) {
	for _, groups := range []int{1, 2} {
		groups := groups
		t.Run(fmt.Sprintf("groups=%d", groups), func(t *testing.T) {
			dir := t.TempDir()
			ids := []gridrep.NodeID{0, 1, 2}
			peers := reservePorts(t, ids)
			srvs := make(map[gridrep.NodeID]*gridrep.Server, len(ids))
			for _, id := range ids {
				srvs[id] = startShardedServer(t, dir, id, peers, groups)
			}
			t.Cleanup(func() {
				for _, s := range srvs {
					s.Close()
				}
			})
			waitAllGroupLeaders(t, srvs, groups, 15*time.Second)

			rec := httptest.NewRecorder()
			srvs[0].DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
			if rec.Code != 200 {
				t.Fatalf("/healthz: %d", rec.Code)
			}
			body := rec.Body.Bytes()
			if groups == 1 {
				var h gridrep.Health
				if err := json.Unmarshal(body, &h); err != nil {
					t.Fatalf("single-group /healthz must be one object: %v\n%s", err, body)
				}
			} else {
				var hs []struct {
					Group int `json:"group"`
					gridrep.Health
				}
				if err := json.Unmarshal(body, &hs); err != nil {
					t.Fatalf("sharded /healthz must be an array: %v\n%s", err, body)
				}
				if len(hs) != groups {
					t.Fatalf("/healthz has %d groups, want %d", len(hs), groups)
				}
				for i, h := range hs {
					if h.Group != i {
						t.Fatalf("entry %d has group %d", i, h.Group)
					}
				}
			}

			rec = httptest.NewRecorder()
			srvs[0].DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if rec.Code != 200 {
				t.Fatalf("/metrics: %d", rec.Code)
			}
			hasPrefix := strings.Contains(rec.Body.String(), "group_1_")
			if (groups > 1) != hasPrefix {
				t.Fatalf("groups=%d: metrics group_1_ prefix presence = %v", groups, hasPrefix)
			}
		})
	}
}
