package gridrep_test

import (
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"gridrep"
	"gridrep/internal/storage"
)

// reservePorts grabs n loopback ports so every replica can start with a
// full address book.
func reservePorts(t *testing.T, ids []gridrep.NodeID) map[gridrep.NodeID]string {
	t.Helper()
	peers := make(map[gridrep.NodeID]string, len(ids))
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		peers[id] = ln.Addr().String()
		ln.Close()
	}
	return peers
}

// tcpLeader polls the servers for the one that reports itself as the
// activated leader.
func tcpLeader(t *testing.T, srvs map[gridrep.NodeID]*gridrep.Server, timeout time.Duration) gridrep.NodeID {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for id, s := range srvs {
			if s.Health().Leading {
				return id
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no TCP leader")
	return 0
}

// TestTCPOnlineJoinWithPrunedWAL is the end-to-end acceptance scenario
// for online reconfiguration (ISSUE 6): a 3-replica TCP cluster under
// write load loses one replica, the survivors prune their WALs below
// the cluster watermark, and a brand-new replacement started with
// Join=true (replicad's -join flag takes this exact path) must install
// a streamed snapshot, replay the live suffix, and be promoted to voter
// by a committed configuration entry — with zero acked writes lost.
func TestTCPOnlineJoinWithPrunedWAL(t *testing.T) {
	dir := t.TempDir()
	peers := reservePorts(t, []gridrep.NodeID{0, 1, 2})
	srvs := make(map[gridrep.NodeID]*gridrep.Server, 4)
	for id := gridrep.NodeID(0); id < 3; id++ {
		srv, err := gridrep.ListenAndServe(gridrep.ServerOptions{
			ID:                id,
			Peers:             peers,
			Service:           gridrep.NewKV(),
			WALPath:           filepath.Join(dir, fmt.Sprintf("r%d.wal", id)),
			HeartbeatInterval: 10 * time.Millisecond,
			SnapshotEvery:     16,
			PruneKeep:         4,
		})
		if err != nil {
			t.Fatal(err)
		}
		srvs[id] = srv
		t.Cleanup(srv.Close)
	}
	cli, err := gridrep.Dial(gridrep.DialOptions{ID: 1, Replicas: peers, Deadline: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	put := func(i int) {
		if _, err := cli.Write(gridrep.KVPut(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i)))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		put(i)
	}

	// Kill a backup; its disk is gone for good.
	leader := tcpLeader(t, srvs, 5*time.Second)
	var victim gridrep.NodeID
	for id := range srvs {
		if id != leader {
			victim = id
			break
		}
	}
	srvs[victim].Close()
	delete(srvs, victim)

	// Load continues; survivors prune up to the dead node's last
	// gossiped watermark.
	for i := 100; i < 200; i++ {
		put(i)
	}
	deadline := time.Now().Add(15 * time.Second)
	for srvs[tcpLeader(t, srvs, 5*time.Second)].Health().PrunedIndex == 0 {
		if time.Now().After(deadline) {
			t.Fatal("survivors never pruned their WALs")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Replacement: new identity, empty WAL, -join path.
	joinPeers := make(map[gridrep.NodeID]string, 4)
	for id, addr := range peers {
		joinPeers[id] = addr
	}
	jp := reservePorts(t, []gridrep.NodeID{3})
	joinPeers[3] = jp[3]
	start := time.Now()
	joiner, err := gridrep.ListenAndServe(gridrep.ServerOptions{
		ID:                3,
		Peers:             joinPeers,
		Service:           gridrep.NewKV(),
		WALPath:           filepath.Join(dir, "r3.wal"),
		HeartbeatInterval: 10 * time.Millisecond,
		SnapshotEvery:     16,
		PruneKeep:         4,
		Join:              true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvs[3] = joiner
	t.Cleanup(joiner.Close)

	// Wait for the committed add-voter entry to land.
	deadline = time.Now().Add(30 * time.Second)
	for {
		voter := false
		for _, m := range srvs[tcpLeader(t, srvs, 5*time.Second)].Health().Members {
			if m == 3 {
				voter = true
			}
		}
		if voter {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner never promoted; leader health = %+v", srvs[tcpLeader(t, srvs, 5*time.Second)].Health())
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("TCP join to voter promotion took %v", time.Since(start))
	if h := joiner.Health(); h.SnapshotIndex == 0 {
		t.Fatalf("joiner caught up without a snapshot install: %+v", h)
	}

	// X-Paxos reads need confirms from a majority of the NEW voter set,
	// and clients broadcast reads to the replicas in their address book —
	// so after a membership change the operator must refresh client
	// books (README: online reconfiguration). Dial with the grown set.
	cli2, err := gridrep.Dial(gridrep.DialOptions{ID: 2, Replicas: joinPeers, Deadline: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()

	// Zero lost acked writes through the whole sequence.
	for i := 0; i < 200; i += 11 {
		res, err := cli2.Read(gridrep.KVGet(fmt.Sprintf("k%03d", i)))
		if err != nil {
			for id, s := range srvs {
				t.Logf("replica %d health: %+v", id, s.Health())
			}
			t.Fatalf("read k%03d: %v", i, err)
		}
		if v, ok := gridrep.KVReply(res); !ok || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("k%03d = %q (acked write lost)", i, v)
		}
	}
	if _, err := cli2.Write(gridrep.KVPut("post-join", []byte("ok"))); err != nil {
		t.Fatalf("write after join: %v", err)
	}
}

// TestTCPGracefulShutdownFlushesWAL: Server.Shutdown (replicad's
// SIGTERM path) must flush the staged group-commit batch before closing
// the store, so a reopen replays the complete local log — including the
// chosen markers that a crash-model Close may leave staged in RAM.
func TestTCPGracefulShutdownFlushesWAL(t *testing.T) {
	dir := t.TempDir()
	peers := reservePorts(t, []gridrep.NodeID{0})
	walPath := filepath.Join(dir, "r0.wal")
	srv, err := gridrep.ListenAndServe(gridrep.ServerOptions{
		ID:                0,
		Peers:             peers,
		Service:           gridrep.NewKV(),
		WALPath:           walPath,
		HeartbeatInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := gridrep.Dial(gridrep.DialOptions{ID: 1, Replicas: peers, Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := cli.Write(gridrep.KVPut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	cli.Close()
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	st, err := storage.OpenFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ps, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Chosen < n {
		t.Fatalf("replayed Chosen = %d, want >= %d: staged chosen markers lost on graceful shutdown", ps.Chosen, n)
	}
	if ps.Accepted.Len() == 0 {
		t.Fatal("no accepted entries replayed after graceful shutdown")
	}
}
